"""Simplified Stacked Borrows.

Each allocation carries one borrow stack (allocation granularity — coarser
than Miri's per-byte stacks, but sufficient to reproduce the canonical
aliasing-UB patterns the corpus exercises):

* a new allocation starts with its base tag, permission ``UNIQUE``;
* ``&mut place``  pushes a new ``UNIQUE`` item (a write-capable reborrow);
* ``&place``      pushes a new ``SHARED_RO`` item;
* casting a reference to a raw pointer pushes a ``SHARED_RW`` item;
* a **read** through tag *t* requires *t* to be on the stack and pops any
  ``UNIQUE`` items above it (reads invalidate unique reborrows above);
* a **write** through tag *t* requires *t* to be on the stack with write
  permission (``UNIQUE``/``SHARED_RW``) and pops everything above it.

A failed access raises a stacked-borrows violation. The error is categorised
as ``both_borrow`` when the invalidated tag came from a *reference* (the
classic "mutable + shared alias" misuse) and ``stack_borrow`` when it came
from a *raw pointer* (the classic "raw pointer invalidated by reborrow"),
matching how the Miri dataset splits its folders.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from ..lang.span import DUMMY_SPAN, Span
from .errors import MiriError, UbKind


class _TagState(threading.local):
    """Per-thread tag numbering, reset at the start of every execution.

    Tags appear in diagnostics ("tag <8>"), and those diagnostics feed LLM
    prompts whose token counts feed the virtual clock — so tag numbers must
    depend only on the program being executed, never on what else ran
    earlier in the process or concurrently on other threads (campaign
    workers).  Real Miri likewise numbers tags per execution.
    """

    def __init__(self):
        self.next = 1


_TAGS = _TagState()


class Permission(enum.Enum):
    UNIQUE = "Unique"
    SHARED_RW = "SharedReadWrite"
    SHARED_RO = "SharedReadOnly"


class TagOrigin(enum.Enum):
    BASE = "base"
    REF_MUT = "&mut"
    REF_SHARED = "&"
    RAW = "raw pointer"


@dataclass(frozen=True)
class BorrowItem:
    tag: int
    perm: Permission
    origin: TagOrigin


class BorrowError(Exception):
    def __init__(self, error: MiriError):
        super().__init__(error.message)
        self.error = error


def fresh_tag() -> int:
    tag = _TAGS.next
    _TAGS.next += 1
    return tag


def reset_tags() -> None:
    """Restart tag numbering; called once per interpreter execution."""
    _TAGS.next = 1


@dataclass
class BorrowStack:
    """The per-allocation stack of borrow items."""

    items: list[BorrowItem] = field(default_factory=list)
    #: Origins of every tag ever pushed — needed to categorise *missing* tags.
    origins: dict[int, TagOrigin] = field(default_factory=dict)

    @classmethod
    def new_allocation(cls) -> tuple["BorrowStack", int]:
        stack = cls()
        base = fresh_tag()
        stack.items.append(BorrowItem(base, Permission.UNIQUE, TagOrigin.BASE))
        stack.origins[base] = TagOrigin.BASE
        return stack, base

    # ------------------------------------------------------------------

    def _index_of(self, tag: int) -> int | None:
        for index in range(len(self.items) - 1, -1, -1):
            if self.items[index].tag == tag:
                return index
        return None

    def _missing_tag_error(self, tag: int, access: str, span: Span) -> BorrowError:
        origin = self.origins.get(tag, TagOrigin.RAW)
        if origin is TagOrigin.RAW:
            kind = UbKind.STACK_BORROW
            what = "raw pointer"
        else:
            kind = UbKind.BOTH_BORROW
            what = f"reference ({origin.value})"
        message = (
            f"attempting a {access} access using {what} tag <{tag}>, but that "
            f"tag does not exist in the borrow stack for this location"
        )
        return BorrowError(MiriError(kind, message, span))

    # ------------------------------------------------------------------
    # Accesses

    def read(self, tag: int, span: Span = DUMMY_SPAN) -> None:
        index = self._index_of(tag)
        if index is None:
            raise self._missing_tag_error(tag, "read", span)
        # Reads invalidate Unique reborrows above the granting item.
        self.items[index + 1 :] = [
            item for item in self.items[index + 1 :]
            if item.perm is not Permission.UNIQUE
        ]

    def write(self, tag: int, span: Span = DUMMY_SPAN) -> None:
        index = self._index_of(tag)
        if index is None:
            raise self._missing_tag_error(tag, "write", span)
        item = self.items[index]
        if item.perm is Permission.SHARED_RO:
            raise BorrowError(MiriError(
                UbKind.BOTH_BORROW,
                f"attempting a write access using shared tag <{tag}>, which "
                f"only grants SharedReadOnly permission",
                span,
            ))
        del self.items[index + 1 :]

    # ------------------------------------------------------------------
    # Retags (new pointer creation)

    def _push(self, parent_tag: int, perm: Permission, origin: TagOrigin,
              span: Span) -> int:
        tag = fresh_tag()
        self.items.append(BorrowItem(tag, perm, origin))
        self.origins[tag] = origin
        return tag

    def retag_mut(self, parent_tag: int, span: Span = DUMMY_SPAN) -> int:
        """``&mut place`` — a unique reborrow: acts as a write access first."""
        self.write(parent_tag, span)
        return self._push(parent_tag, Permission.UNIQUE, TagOrigin.REF_MUT, span)

    def retag_shared(self, parent_tag: int, span: Span = DUMMY_SPAN) -> int:
        """``&place`` — shared reborrow: acts as a read access first."""
        self.read(parent_tag, span)
        return self._push(parent_tag, Permission.SHARED_RO, TagOrigin.REF_SHARED, span)

    def retag_raw(self, parent_tag: int, mutable: bool,
                  span: Span = DUMMY_SPAN) -> int:
        """Reference-to-raw-pointer cast (``&mut x as *mut T`` etc.)."""
        if mutable:
            self.write(parent_tag, span)
            perm = Permission.SHARED_RW
        else:
            self.read(parent_tag, span)
            perm = Permission.SHARED_RO
        return self._push(parent_tag, perm, TagOrigin.RAW, span)

    def grants(self, tag: int) -> bool:
        return self._index_of(tag) is not None

    def depth(self) -> int:
        return len(self.items)
