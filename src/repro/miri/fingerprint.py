"""Normalized-AST source fingerprints for detector-level deduplication.

The detector is a pure function of the *program*, not of the bytes that
spell it: whitespace, comments, redundant formatting, and a consistent
renaming of user-chosen identifiers all leave every verdict, error count,
and observable output unchanged.  :func:`source_fingerprint` computes a
stable hash of that equivalence class, which is what lets
:func:`~repro.miri.detect_ub_batch` and the
:class:`~repro.miri.BatchVerifier` answer formatting-divergent duplicate
candidates with a single interpreter run.

Normalization pipeline (``FINGERPRINT_VERSION`` tags the rules):

1. **Parse** the source (through the memoized
   :func:`~repro.lang.parser.parse_program`) and pretty-print it back —
   this alone erases comments, whitespace, and redundant formatting, and
   drops every span.
2. **Re-lex** the canonical text and alpha-rename user identifiers by
   order of first appearance (``§0``, ``§1``, …).
3. **Hash** the resulting ``kind:text`` token stream with SHA-256.

Renaming is deliberately conservative — it is a *bijection* over the
renamed names (two distinct names never merge), and a name is only
renamed when the interpreter provably attaches no meaning to it:

* only names **declared** in the program itself (bindings, parameters,
  statics/consts, structs and their fields) are candidates — never
  ``std``/shim path material, and never names observable in stdout:
  *function* names print as ``<fn name>`` when a function is used as a
  value, and *union* names/fields print as ``Name { field: value }``;
* names that appear adjacent to ``::`` anywhere (path segments such as
  ``mem::transmute`` or ``Box::new``) are excluded wholesale;
* names that appear after a ``.`` anywhere (method/field positions,
  where built-in method shims like ``.len()`` resolve by name) are
  excluded wholesale;
* names the interpreter special-cases before user items (``main``,
  ``drop``, ``Some``/``None``/``Ok``/``Err``), macro names, and
  primitive type names are never renamed.

Two sources with equal fingerprints therefore differ at most by
formatting plus a behaviour-preserving renaming; their verdicts, error
*counts*, and stdout coincide exactly (error *messages* and spans may
still spell the other variant's names — see the sharing notes on
:func:`~repro.miri.detect_ub_batch`).  Unparseable sources fall back to
a raw-text hash, so they only ever deduplicate against byte-identical
inputs.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from ..lang import ast_nodes as ast
from ..lang.lexer import tokenize
from ..lang.parser import _MACRO_NAMES, parse_program
from ..lang.printer import print_program
from ..lang.tokens import TokenKind as T
from ..lang.types import PRIMITIVES

#: Bump when the normalization rules change, so fingerprints from two code
#: versions can never be confused for one another.
FINGERPRINT_VERSION = "repro.ast-fingerprint/1"

#: Names that carry meaning to the interpreter even when the program also
#: declares them: the entry point, call-resolution special cases that win
#: over user items, macro names, and primitive type names.
_PROTECTED = (frozenset({"main", "drop", "Some", "None", "Ok", "Err"})
              | frozenset(_MACRO_NAMES) | frozenset(PRIMITIVES))

_SEP = "\x1f"


def _declared_names(program: ast.Program) -> set[str]:
    """Renameable identifiers: names the program binds or defines.

    Two declaration kinds are deliberately *absent*, because their names
    are observable in stdout and renaming them would let two programs
    with different observable output share a fingerprint:

    * function item names — a function used as a value prints as
      ``<fn name>`` (``VFnPtr.__str__``);
    * union names and union field names — a union literal prints as
      ``Name { field: value }`` (``VUnionInit.__str__``).

    Struct names and struct fields stay renameable: struct values print
    as bare element tuples (``VAggregate``), never by name.
    """
    names: set[str] = set()
    observable: set[str] = set()
    for node in ast.walk(program):
        if isinstance(node, ast.LetStmt):
            names.add(node.name)
        elif isinstance(node, ast.Param):
            names.add(node.name)
        elif isinstance(node, ast.ForExpr):
            names.add(node.var)
        elif isinstance(node, ast.Closure):
            names.update(node.params)
        elif isinstance(node, (ast.StaticItem, ast.ConstItem)):
            names.add(node.name)
        elif isinstance(node, ast.StructItem):
            names.add(node.name)
            names.update(field_name for field_name, _ty in node.fields)
        elif isinstance(node, ast.UnionItem):
            # Renaming is name-level, so a binding or struct field that
            # happens to share a union's (printable) name must stay
            # verbatim too.
            observable.add(node.name)
            observable.update(field_name for field_name, _ty in node.fields)
        elif isinstance(node, ast.FnItem):
            observable.add(node.name)
    return names - observable


def _excluded_names(tokens) -> set[str]:
    """Identifiers whose *position* ties them to built-in resolution:
    path segments (adjacent to ``::``) and method/field accesses
    (following ``.``)."""
    excluded: set[str] = set()
    previous = None
    for index, token in enumerate(tokens):
        if token.kind is T.IDENT:
            following = tokens[index + 1] if index + 1 < len(tokens) else None
            if (previous is not None and previous.kind in (T.COLONCOLON,
                                                           T.DOT)) \
                    or (following is not None
                        and following.kind is T.COLONCOLON):
                excluded.add(token.text)
        previous = token
    return excluded


def _raw_fingerprint(source: str) -> str:
    digest = hashlib.sha256()
    digest.update(f"{FINGERPRINT_VERSION}{_SEP}raw{_SEP}".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def renameable_names(source: str) -> set[str]:
    """Identifiers of ``source`` that a behaviour-preserving renaming may
    touch — exactly the set the fingerprint normalizer alpha-renames.

    This is the other consumer of the conservative rename analysis: the
    corpus *generator* renames these names to fresh spellings to mint
    mutant cases, and the fingerprint renames them to ``§N`` to erase the
    choice again — which is why rename mutants collide with their parent
    under :func:`source_fingerprint`.  Raises on unparseable input.
    """
    program = parse_program(source)
    tokens = tokenize(print_program(program))
    return _declared_names(program) - _PROTECTED - _excluded_names(tokens)


def normalized_tokens(source: str) -> list[str]:
    """The canonical ``kind:text`` token stream :func:`source_fingerprint`
    hashes, with user identifiers alpha-renamed.  Raises on unparseable
    input (callers wanting the fallback use :func:`source_fingerprint`)."""
    program = parse_program(source)
    canonical = print_program(program)
    tokens = tokenize(canonical)
    renameable = _declared_names(program) - _PROTECTED \
        - _excluded_names(tokens)
    rename: dict[str, str] = {}
    stream: list[str] = []
    for token in tokens:
        if token.kind is T.EOF:
            break
        text = token.text
        if token.kind is T.IDENT and text in renameable:
            mapped = rename.get(text)
            if mapped is None:
                mapped = rename.setdefault(text, f"§{len(rename)}")
            text = mapped
        stream.append(f"{token.kind.name}:{text}")
    return stream


@lru_cache(maxsize=8192)
def source_fingerprint(source: str) -> str:
    """Stable normalization hash of one source text (see module docs).

    Memoized on the text — campaigns re-fingerprint the same candidates
    constantly, and the parse behind a fingerprint must stay amortized.
    """
    try:
        stream = normalized_tokens(source)
    except Exception:
        # Unparseable (or unlexable-after-print, which should not happen):
        # fall back to the raw text, so dedup degrades to byte identity.
        return _raw_fingerprint(source)
    digest = hashlib.sha256()
    digest.update(f"{FINGERPRINT_VERSION}{_SEP}ast{_SEP}".encode("utf-8"))
    digest.update(_SEP.join(stream).encode("utf-8"))
    return digest.hexdigest()


def fingerprint_cache_info():
    """The memo's ``lru_cache`` statistics (for diagnostics and tests)."""
    return source_fingerprint.cache_info()
