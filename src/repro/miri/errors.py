"""Undefined-behavior taxonomy and error reporting.

The categories mirror the directory names of the Miri test-suite dataset the
paper evaluates on (alloc, dangling_pointer, stacked_borrows, both_borrows,
provenance, validity, unaligned, uninit, data_race, concurrency,
function_calls, function_pointers, panic, tail_calls).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..lang.span import DUMMY_SPAN, Span


class UbKind(enum.Enum):
    """UB / error categories, named after the paper's dataset folders."""

    ALLOC = "alloc"
    DANGLING_POINTER = "dangling_pointer"
    PANIC = "panic"
    PROVENANCE = "provenance"
    UNINIT = "uninit"
    BOTH_BORROW = "both_borrow"
    DATA_RACE = "datarace"
    FUNC_CALL = "func_call"
    FUNC_POINTER = "func_pointer"
    STACK_BORROW = "stack_borrow"
    VALIDITY = "validity"
    UNALIGNED = "unaligned"
    CONCURRENCY = "concurrency"
    TAIL_CALL = "tailcall"
    # Non-UB failure modes the harness still has to count.
    COMPILE = "compile"
    UNSUPPORTED = "unsupported"
    RESOURCE = "resource"

    @property
    def is_ub(self) -> bool:
        return self not in (UbKind.COMPILE, UbKind.UNSUPPORTED, UbKind.RESOURCE)


#: The twelve categories Fig. 8/9/12 and Table I sweep over, in paper order.
PAPER_CATEGORIES = [
    UbKind.ALLOC,
    UbKind.DANGLING_POINTER,
    UbKind.PANIC,
    UbKind.PROVENANCE,
    UbKind.UNINIT,
    UbKind.BOTH_BORROW,
    UbKind.DATA_RACE,
    UbKind.FUNC_CALL,
    UbKind.FUNC_POINTER,
    UbKind.STACK_BORROW,
    UbKind.VALIDITY,
    UbKind.UNALIGNED,
    UbKind.CONCURRENCY,
    UbKind.TAIL_CALL,
]


@dataclass(frozen=True)
class MiriError:
    """One detected error, analogous to a Miri diagnostic."""

    kind: UbKind
    message: str
    span: Span = DUMMY_SPAN

    def render(self) -> str:
        prefix = {
            UbKind.PANIC: "error: abnormal termination",
            UbKind.COMPILE: "error[compile]",
            UbKind.UNSUPPORTED: "error: unsupported operation",
            UbKind.RESOURCE: "error: resource exhaustion",
        }.get(self.kind, "error: Undefined Behavior")
        location = f" --> src/main.rs:{self.span.line}:{self.span.col}" if self.span.line else ""
        return f"{prefix}: {self.message}\n{location}".rstrip()


class UbSignal(Exception):
    """Raised inside the interpreter when UB is hit (stop-at-first mode)."""

    def __init__(self, error: MiriError):
        super().__init__(error.message)
        self.error = error


class PanicSignal(Exception):
    """Raised for Rust panics (assert failures, overflow, OOB indexing)."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.error = MiriError(UbKind.PANIC, f"panicked: {message}", span)


class InterpUnsupported(Exception):
    """An operation the interpreter does not model (kills the run)."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.error = MiriError(UbKind.UNSUPPORTED, message, span)


class CompileError(Exception):
    """Front-end rejection (parse failure, safety check, bad transmute)."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.error = MiriError(UbKind.COMPILE, message, span)


@dataclass
class MiriReport:
    """Outcome of one detector run over a program."""

    errors: list[MiriError] = field(default_factory=list)
    stdout: list[str] = field(default_factory=list)
    steps: int = 0
    #: True when the program ran to completion with no errors at all.
    @property
    def passed(self) -> bool:
        return not self.errors

    @property
    def error_count(self) -> int:
        return len(self.errors)

    def categories(self) -> list[UbKind]:
        return [e.kind for e in self.errors]

    def has(self, kind: UbKind) -> bool:
        return any(e.kind is kind for e in self.errors)

    def first(self) -> MiriError | None:
        return self.errors[0] if self.errors else None

    def copy(self) -> "MiriReport":
        """An independent report with the same verdict.

        The error entries themselves are frozen and shared; only the
        containers are fresh, so memo layers can hand out defensive
        copies without a caller's mutation ever reaching another
        caller's report.
        """
        return MiriReport(errors=list(self.errors),
                         stdout=list(self.stdout), steps=self.steps)

    def render(self) -> str:
        if self.passed:
            return "pass: no undefined behavior detected"
        return "\n\n".join(e.render() for e in self.errors)
