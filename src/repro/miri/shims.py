"""Standard-library shims: the std surface the UB corpus exercises.

Two registries:

* :data:`CALL_SHIMS` — free/associated functions, keyed by their normalised
  path (``mem::transmute`` and ``std::mem::transmute`` both resolve);
* method shims, dispatched by :func:`call_method` on the receiver's type.

Each shim receives the interpreter (duck-typed), the evaluated arguments,
any turbofish generic arguments, the thread id, and the call span. Shims
implement *genuine* semantics over the byte-level memory model — ``Vec::push``
really reallocates (so stale ``as_ptr`` pointers really dangle), ``dealloc``
really checks the layout, ``transmute`` really round-trips bytes.
"""

from __future__ import annotations

from ..lang import types as ty
from ..lang.span import Span
from .errors import InterpUnsupported, MiriError, PanicSignal, UbKind, UbSignal
from .memory import AllocKind, Relocation
from .values import (
    VAggregate,
    VBool,
    VFnPtr,
    VInt,
    VLayout,
    VMutexGuard,
    VOption,
    VPtr,
    VStr,
    VThreadHandle,
    VUninit,
    VUnit,
    Value,
)

UNIT = VUnit()


def _int(value: Value, span: Span, what: str = "integer") -> int:
    if isinstance(value, VInt):
        return value.value
    if isinstance(value, VBool):
        return int(value.value)
    raise InterpUnsupported(f"expected {what}, got {type(value).__name__}", span)


def _ptr(value: Value, span: Span) -> VPtr:
    if isinstance(value, VPtr):
        return value
    raise InterpUnsupported(
        f"expected pointer, got {type(value).__name__}", span)


def _layout_of(generic_args, interp, span: Span) -> ty.Ty:
    if not generic_args:
        raise InterpUnsupported("missing turbofish type argument", span)
    return generic_args[0]


# ---------------------------------------------------------------------------
# mem::*


def shim_transmute(interp, args, generic_args, tid, span):
    if len(generic_args) != 2:
        raise InterpUnsupported("transmute requires ::<Src, Dst>", span)
    src_ty, dst_ty = generic_args
    src_size = ty.size_of(src_ty, interp.memory.structs)
    dst_size = ty.size_of(dst_ty, interp.memory.structs)
    if src_size != dst_size:
        from .errors import CompileError
        raise CompileError(
            f"cannot transmute between types of different sizes: {src_ty} "
            f"({src_size} bytes) vs {dst_ty} ({dst_size} bytes)",
            span,
        )
    data, relocs = interp.memory.encode(args[0], src_ty, span)
    return interp.memory.decode(data, relocs, dst_ty, span)


def shim_size_of(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    return VInt(ty.size_of(target, interp.memory.structs), ty.USIZE)


def shim_align_of(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    return VInt(ty.align_of(target, interp.memory.structs), ty.USIZE)


def shim_forget(interp, args, generic_args, tid, span):
    return UNIT


def shim_zeroed(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    size = ty.size_of(target, interp.memory.structs)
    return interp.memory.decode(b"\x00" * size, {}, target, span)


def shim_swap(interp, args, generic_args, tid, span):
    a, b = _ptr(args[0], span), _ptr(args[1], span)
    align = ty.align_of(a.pointee, interp.memory.structs)
    size = ty.size_of(a.pointee, interp.memory.structs)
    data_a, rel_a = interp.memory.read_bytes(a, size, align, tid, span)
    data_b, rel_b = interp.memory.read_bytes(b, size, align, tid, span)
    interp.memory.write_bytes(a, data_b, rel_b, align, tid, span)
    interp.memory.write_bytes(b, data_a, rel_a, align, tid, span)
    return UNIT


def shim_replace(interp, args, generic_args, tid, span):
    dest = _ptr(args[0], span)
    old = interp.read_place(dest, tid, span)
    interp.write_place(dest, args[1], tid, span)
    return old


def shim_drop(interp, args, generic_args, tid, span):
    """``drop(x)``: runs the destructor for Box / Vec / MutexGuard values."""
    value = args[0]
    if isinstance(value, VMutexGuard):
        interp.unlock_mutex(value, tid, span)
        return UNIT
    if isinstance(value, VPtr) and value.alloc_id is not None and value.pointee is not None:
        alloc = interp.memory.allocations.get(value.alloc_id)
        if alloc is not None and alloc.kind is AllocKind.HEAP and interp.is_owned_ptr(value):
            interp.memory.deallocate(value.alloc_id, span)
            return UNIT
    if isinstance(value, VAggregate) and isinstance(value.ty, ty.TyPath) \
            and value.ty.name == "Vec":
        data_ptr = value.elems[0]
        if isinstance(data_ptr, VPtr) and data_ptr.alloc_id is not None:
            interp.memory.deallocate(data_ptr.alloc_id, span)
        return UNIT
    return UNIT


# ---------------------------------------------------------------------------
# ptr::*


def shim_ptr_null(interp, args, generic_args, tid, span):
    pointee = generic_args[0] if generic_args else ty.U8
    return VPtr(None, 0, None, pointee, mutable=False)


def shim_ptr_null_mut(interp, args, generic_args, tid, span):
    pointee = generic_args[0] if generic_args else ty.U8
    return VPtr(None, 0, None, pointee, mutable=True)


def shim_ptr_read(interp, args, generic_args, tid, span):
    return interp.read_place(_ptr(args[0], span), tid, span)


def shim_ptr_write(interp, args, generic_args, tid, span):
    interp.write_place(_ptr(args[0], span), args[1], tid, span)
    return UNIT


def shim_ptr_copy(interp, args, generic_args, tid, span):
    src, dst = _ptr(args[0], span), _ptr(args[1], span)
    count = _int(args[2], span)
    size = ty.size_of(src.pointee, interp.memory.structs)
    align = ty.align_of(src.pointee, interp.memory.structs)
    data, relocs = interp.memory.read_bytes(src, size * count, align, tid, span,
                                            require_init=False)
    interp.memory.write_bytes(dst, data, relocs, align, tid, span)
    return UNIT


# ---------------------------------------------------------------------------
# Box


def shim_box_new(interp, args, generic_args, tid, span):
    value = args[0]
    value_ty = generic_args[0] if generic_args else interp.type_of_value(value)
    size = ty.size_of(value_ty, interp.memory.structs)
    align = ty.align_of(value_ty, interp.memory.structs)
    alloc = interp.memory.allocate(max(size, 1), align, AllocKind.HEAP, "Box")
    box_ptr = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, value_ty,
                   mutable=True, is_box=True)
    if size:
        interp.write_place(box_ptr.with_pointee(value_ty), value, tid, span)
    interp.owned_boxes.add(alloc.id)
    return box_ptr


def shim_box_into_raw(interp, args, generic_args, tid, span):
    box_ptr = _ptr(args[0], span)
    interp.owned_boxes.discard(box_ptr.alloc_id)
    return VPtr(box_ptr.alloc_id, box_ptr.addr, box_ptr.tag, box_ptr.pointee,
                mutable=True)


def shim_box_from_raw(interp, args, generic_args, tid, span):
    raw = _ptr(args[0], span)
    if raw.alloc_id is not None:
        interp.owned_boxes.add(raw.alloc_id)
    return VPtr(raw.alloc_id, raw.addr, raw.tag, raw.pointee, mutable=True,
                is_box=True)


def shim_box_leak(interp, args, generic_args, tid, span):
    box_ptr = _ptr(args[0], span)
    interp.owned_boxes.discard(box_ptr.alloc_id)
    return VPtr(box_ptr.alloc_id, box_ptr.addr, box_ptr.tag, box_ptr.pointee,
                mutable=True, is_ref=True)


# ---------------------------------------------------------------------------
# Vec (three-word struct: data ptr, capacity, length)


def _vec_elem_ty(vec_ty: ty.Ty, span: Span) -> ty.Ty:
    if isinstance(vec_ty, ty.TyPath) and vec_ty.name == "Vec" and vec_ty.args:
        return vec_ty.args[0]
    raise InterpUnsupported(f"cannot determine Vec element type of {vec_ty}", span)


def vec_value(data_ptr: VPtr | None, cap: int, length: int,
              vec_ty: ty.Ty) -> VAggregate:
    ptr = data_ptr if data_ptr is not None else VPtr(
        None, 0, None, _vec_elem_ty(vec_ty, Span(0, 0, 0, 0)), mutable=True)
    return VAggregate(vec_ty, (ptr, VInt(cap, ty.USIZE), VInt(length, ty.USIZE)))


def shim_vec_new(interp, args, generic_args, tid, span):
    elem = generic_args[0] if generic_args else None
    vec_ty = ty.TyPath("Vec", (elem,)) if elem else ty.TyPath("Vec", ())
    return vec_value(None, 0, 0, vec_ty if elem else ty.TyPath("Vec", (ty.INFER,)))


def shim_vec_with_capacity(interp, args, generic_args, tid, span):
    cap = _int(args[0], span)
    elem = generic_args[0] if generic_args else ty.INFER
    vec_ty = ty.TyPath("Vec", (elem,))
    if isinstance(elem, ty.TyInfer) or cap == 0:
        return vec_value(None, cap, 0, vec_ty)
    alloc = _vec_alloc(interp, elem, cap, span)
    ptr = VPtr(alloc.id, alloc.base_addr, alloc.base_tag, elem, mutable=True)
    return vec_value(ptr, cap, 0, vec_ty)


def _vec_alloc(interp, elem_ty: ty.Ty, cap: int, span: Span):
    size = ty.size_of(elem_ty, interp.memory.structs)
    align = ty.align_of(elem_ty, interp.memory.structs)
    return interp.memory.allocate(max(size * cap, 1), max(align, 1),
                                  AllocKind.HEAP, "Vec buffer")


def _read_vec(interp, place: VPtr, tid, span):
    """Read the (ptr, cap, len) triple from a Vec place."""
    vec_ty = place.pointee
    elem = _vec_elem_ty(vec_ty, span)
    value = interp.read_place(place, tid, span)
    data_ptr, cap, length = value.elems
    return elem, data_ptr, cap.value, length.value


def _write_vec(interp, place: VPtr, data_ptr, cap, length, tid, span):
    interp.write_place(
        place, vec_value(data_ptr, cap, length, place.pointee), tid, span)


def method_vec_push(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    if isinstance(elem, ty.TyInfer):
        elem = interp.type_of_value(args[0])
        place = place.with_pointee(ty.TyPath("Vec", (elem,)))
    size = ty.size_of(elem, interp.memory.structs)
    if length == cap:
        new_cap = max(4, cap * 2)
        new_alloc = _vec_alloc(interp, elem, new_cap, span)
        if cap and data_ptr.alloc_id is not None:
            old = interp.memory.allocations[data_ptr.alloc_id]
            new_alloc.data[: size * length] = old.data[: size * length]
            new_alloc.init[: size * length] = old.init[: size * length]
            new_alloc.relocations.update(old.relocations)
            interp.memory.deallocate(data_ptr.alloc_id, span)
        data_ptr = VPtr(new_alloc.id, new_alloc.base_addr, new_alloc.base_tag,
                        elem, mutable=True)
        cap = new_cap
    slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * length,
                data_ptr.tag, elem, mutable=True)
    interp.write_place(slot, args[0], tid, span)
    _write_vec(interp, place, data_ptr, cap, length + 1, tid, span)
    return UNIT


def method_vec_pop(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    if length == 0:
        return VOption(None, elem)
    size = ty.size_of(elem, interp.memory.structs)
    slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * (length - 1),
                data_ptr.tag, elem, mutable=True)
    value = interp.read_place(slot, tid, span)
    _write_vec(interp, place, data_ptr, cap, length - 1, tid, span)
    return VOption(value, elem)


def method_vec_len(interp, place, args, generic_args, tid, span):
    _, _, _, length = _read_vec(interp, place, tid, span)
    return VInt(length, ty.USIZE)


def method_vec_capacity(interp, place, args, generic_args, tid, span):
    _, _, cap, _ = _read_vec(interp, place, tid, span)
    return VInt(cap, ty.USIZE)


def method_vec_is_empty(interp, place, args, generic_args, tid, span):
    _, _, _, length = _read_vec(interp, place, tid, span)
    return VBool(length == 0)


def method_vec_as_ptr(interp, place, args, generic_args, tid, span):
    return _vec_raw_ptr(interp, place, tid, span, mutable=False)


def method_vec_as_mut_ptr(interp, place, args, generic_args, tid, span):
    return _vec_raw_ptr(interp, place, tid, span, mutable=True)


def _vec_raw_ptr(interp, place, tid, span, mutable):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    if data_ptr.alloc_id is None:
        # Empty vec: NonNull::dangling — any use will be dangling/provenance UB.
        align = 1 if isinstance(elem, ty.TyInfer) else \
            ty.align_of(elem, interp.memory.structs)
        return VPtr(None, align, None, elem, mutable=mutable)
    alloc = interp.memory.allocations[data_ptr.alloc_id]
    if alloc.live:
        from .borrows import BorrowError
        try:
            tag = alloc.borrows.retag_raw(data_ptr.tag, mutable, span)
        except BorrowError as err:
            raise UbSignal(err.error) from None
        return VPtr(alloc.id, data_ptr.addr, tag, elem, mutable=mutable)
    return VPtr(alloc.id, data_ptr.addr, data_ptr.tag, elem, mutable=mutable)


def method_vec_get(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    index = _int(args[0], span)
    if index >= length:
        return VOption(None, elem)
    size = ty.size_of(elem, interp.memory.structs)
    slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * index,
                data_ptr.tag, elem, mutable=False)
    return VOption(interp.read_place(slot, tid, span), elem)


def method_vec_get_unchecked(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    index = _int(args[0], span)
    size = ty.size_of(elem, interp.memory.structs)
    slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * index,
                data_ptr.tag, elem, mutable=False)
    return interp.read_place(slot, tid, span)


def method_vec_set_len(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    _write_vec(interp, place, data_ptr, cap, _int(args[0], span), tid, span)
    return UNIT


def method_vec_truncate(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    new_len = min(length, _int(args[0], span))
    _write_vec(interp, place, data_ptr, cap, new_len, tid, span)
    return UNIT


def method_vec_clear(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    _write_vec(interp, place, data_ptr, cap, 0, tid, span)
    return UNIT


def method_vec_resize(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    new_len = _int(args[0], span)
    fill = args[1]
    size = ty.size_of(elem, interp.memory.structs)
    if new_len > cap:
        new_cap = max(new_len, max(4, cap * 2))
        new_alloc = _vec_alloc(interp, elem, new_cap, span)
        if cap and data_ptr.alloc_id is not None:
            old = interp.memory.allocations[data_ptr.alloc_id]
            new_alloc.data[: size * length] = old.data[: size * length]
            new_alloc.init[: size * length] = old.init[: size * length]
            new_alloc.relocations.update(old.relocations)
            interp.memory.deallocate(data_ptr.alloc_id, span)
        data_ptr = VPtr(new_alloc.id, new_alloc.base_addr, new_alloc.base_tag,
                        elem, mutable=True)
        cap = new_cap
    for index in range(length, new_len):
        slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * index,
                    data_ptr.tag, elem, mutable=True)
        interp.write_place(slot, fill, tid, span)
    _write_vec(interp, place, data_ptr, cap, new_len, tid, span)
    return UNIT


def method_vec_remove(interp, place, args, generic_args, tid, span):
    elem, data_ptr, cap, length = _read_vec(interp, place, tid, span)
    index = _int(args[0], span)
    if index >= length:
        raise PanicSignal(f"removal index (is {index}) should be < len (is {length})", span)
    size = ty.size_of(elem, interp.memory.structs)
    slot = VPtr(data_ptr.alloc_id, data_ptr.addr + size * index,
                data_ptr.tag, elem, mutable=True)
    removed = interp.read_place(slot, tid, span)
    alloc = interp.memory.allocations[data_ptr.alloc_id]
    start = data_ptr.addr - alloc.base_addr
    for i in range(index, length - 1):
        src = start + size * (i + 1)
        dst = start + size * i
        alloc.data[dst : dst + size] = alloc.data[src : src + size]
        alloc.init[dst : dst + size] = alloc.init[src : src + size]
    _write_vec(interp, place, data_ptr, cap, length - 1, tid, span)
    return removed


VEC_METHODS = {
    "push": method_vec_push,
    "pop": method_vec_pop,
    "len": method_vec_len,
    "capacity": method_vec_capacity,
    "is_empty": method_vec_is_empty,
    "as_ptr": method_vec_as_ptr,
    "as_mut_ptr": method_vec_as_mut_ptr,
    "get": method_vec_get,
    "get_unchecked": method_vec_get_unchecked,
    "get_unchecked_mut": method_vec_get_unchecked,
    "set_len": method_vec_set_len,
    "truncate": method_vec_truncate,
    "clear": method_vec_clear,
    "resize": method_vec_resize,
    "remove": method_vec_remove,
}


# ---------------------------------------------------------------------------
# MaybeUninit


def shim_maybe_uninit_uninit(interp, args, generic_args, tid, span):
    target = generic_args[0] if generic_args else ty.INFER
    return VUninit(target)


def shim_maybe_uninit_zeroed(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    size = ty.size_of(target, interp.memory.structs)
    # Zeroed bytes are *initialised*; decoding checks validity lazily.
    return VAggregate(ty.TyPath("MaybeUninit", (target,)),
                      (interp.memory.decode(b"\x00" * size, {}, target, span),))


def shim_maybe_uninit_new(interp, args, generic_args, tid, span):
    inner_ty = generic_args[0] if generic_args else interp.type_of_value(args[0])
    return VAggregate(ty.TyPath("MaybeUninit", (inner_ty,)), (args[0],))


def method_mu_write(interp, place, args, generic_args, tid, span):
    inner_ty = place.pointee.args[0]
    inner_place = place.with_pointee(inner_ty, mutable=True)
    interp.write_place(inner_place, args[0], tid, span)
    return UNIT


def method_mu_assume_init(interp, place, args, generic_args, tid, span):
    inner_ty = place.pointee.args[0]
    return interp.read_place(place.with_pointee(inner_ty), tid, span)


def method_mu_as_ptr(interp, place, args, generic_args, tid, span):
    return interp.raw_ptr_to(place, place.pointee.args[0], mutable=False, span=span)


def method_mu_as_mut_ptr(interp, place, args, generic_args, tid, span):
    return interp.raw_ptr_to(place, place.pointee.args[0], mutable=True, span=span)


MAYBE_UNINIT_METHODS = {
    "write": method_mu_write,
    "assume_init": method_mu_assume_init,
    "as_ptr": method_mu_as_ptr,
    "as_mut_ptr": method_mu_as_mut_ptr,
}


# ---------------------------------------------------------------------------
# Raw pointer methods


def method_ptr_offset(interp, recv: VPtr, args, generic_args, tid, span):
    count = _int(args[0], span)
    return _ptr_offset_checked(interp, recv, count, span)


def method_ptr_add(interp, recv: VPtr, args, generic_args, tid, span):
    return _ptr_offset_checked(interp, recv, _int(args[0], span), span)


def method_ptr_sub(interp, recv: VPtr, args, generic_args, tid, span):
    return _ptr_offset_checked(interp, recv, -_int(args[0], span), span)


def _ptr_offset_checked(interp, recv: VPtr, count: int, span: Span) -> VPtr:
    size = ty.size_of(recv.pointee, interp.memory.structs)
    delta = size * count
    new_addr = recv.addr + delta
    if recv.alloc_id is not None:
        alloc = interp.memory.allocations.get(recv.alloc_id)
        if alloc is not None:
            if not alloc.live:
                raise UbSignal(MiriError(
                    UbKind.DANGLING_POINTER,
                    "pointer arithmetic on a dangling pointer (its allocation "
                    "has been freed)",
                    span,
                ))
            offset = new_addr - alloc.base_addr
            if offset < 0 or offset > alloc.size:
                raise UbSignal(MiriError(
                    UbKind.DANGLING_POINTER,
                    f"out-of-bounds pointer arithmetic: expected a pointer to "
                    f"the end of {alloc.size} bytes of memory, but got a "
                    f"pointer to offset {offset}",
                    span,
                ))
    return VPtr(recv.alloc_id, new_addr, recv.tag, recv.pointee,
                mutable=recv.mutable, meta_len=None)


def method_ptr_wrapping_add(interp, recv: VPtr, args, generic_args, tid, span):
    size = ty.size_of(recv.pointee, interp.memory.structs)
    return VPtr(recv.alloc_id, recv.addr + size * _int(args[0], span),
                recv.tag, recv.pointee, mutable=recv.mutable)


def method_ptr_wrapping_offset(interp, recv, args, generic_args, tid, span):
    return method_ptr_wrapping_add(interp, recv, args, generic_args, tid, span)


def method_ptr_read(interp, recv: VPtr, args, generic_args, tid, span):
    return interp.read_place(recv, tid, span)


def method_ptr_write(interp, recv: VPtr, args, generic_args, tid, span):
    interp.write_place(recv, args[0], tid, span)
    return UNIT


def method_ptr_cast(interp, recv: VPtr, args, generic_args, tid, span):
    target = generic_args[0] if generic_args else ty.U8
    return recv.with_pointee(target)


def method_ptr_read_unaligned(interp, recv: VPtr, args, generic_args, tid, span):
    """Typed read without the alignment requirement."""
    size = ty.size_of(recv.pointee, interp.memory.structs)
    data, relocs = interp.memory.read_bytes(recv, size, 1, tid, span)
    return interp.memory.decode(data, relocs, recv.pointee, span)


def method_ptr_write_unaligned(interp, recv: VPtr, args, generic_args, tid, span):
    data, relocs = interp.memory.encode(
        args[0], recv.pointee, span)
    interp.memory.write_bytes(recv, data, relocs, 1, tid, span)
    return UNIT


def method_ptr_is_null(interp, recv: VPtr, args, generic_args, tid, span):
    return VBool(recv.addr == 0)


PTR_METHODS = {
    "offset": method_ptr_offset,
    "add": method_ptr_add,
    "sub": method_ptr_sub,
    "wrapping_add": method_ptr_wrapping_add,
    "wrapping_offset": method_ptr_wrapping_offset,
    "read": method_ptr_read,
    "write": method_ptr_write,
    "read_unaligned": method_ptr_read_unaligned,
    "write_unaligned": method_ptr_write_unaligned,
    "cast": method_ptr_cast,
    "is_null": method_ptr_is_null,
}


# ---------------------------------------------------------------------------
# Integer methods


def _int_binop_method(name):
    def method(interp, recv: VInt, args, generic_args, tid, span):
        other = _int(args[0], span)
        raw = {
            "wrapping_add": recv.value + other,
            "wrapping_sub": recv.value - other,
            "wrapping_mul": recv.value * other,
            "saturating_add": recv.value + other,
            "saturating_sub": recv.value - other,
            "saturating_mul": recv.value * other,
        }[name]
        if name.startswith("saturating"):
            clamped = max(recv.ty.min_value, min(recv.ty.max_value, raw))
            return VInt(clamped, recv.ty)
        return VInt(recv.ty.wrap(raw), recv.ty)
    return method


def method_int_checked_add(interp, recv: VInt, args, generic_args, tid, span):
    result = recv.value + _int(args[0], span)
    if recv.ty.in_range(result):
        return VOption(VInt(result, recv.ty), recv.ty)
    return VOption(None, recv.ty)


def method_int_pow(interp, recv: VInt, args, generic_args, tid, span):
    result = recv.value ** _int(args[0], span)
    if not recv.ty.in_range(result):
        raise PanicSignal("attempt to multiply with overflow", span)
    return VInt(result, recv.ty)


def method_int_to_le_bytes(interp, recv: VInt, args, generic_args, tid, span):
    size = recv.ty.bits // 8
    wrapped = recv.ty.wrap(recv.value)
    data = wrapped.to_bytes(size, "little", signed=wrapped < 0)
    return VAggregate(ty.TyArray(ty.U8, size),
                      tuple(VInt(b, ty.U8) for b in data))


def method_int_abs(interp, recv: VInt, args, generic_args, tid, span):
    if recv.value == recv.ty.min_value and recv.ty.signed:
        raise PanicSignal("attempt to negate with overflow", span)
    return VInt(abs(recv.value), recv.ty)


def method_int_min(interp, recv: VInt, args, generic_args, tid, span):
    return VInt(min(recv.value, _int(args[0], span)), recv.ty)


def method_int_max(interp, recv: VInt, args, generic_args, tid, span):
    return VInt(max(recv.value, _int(args[0], span)), recv.ty)


def method_int_count_ones(interp, recv: VInt, args, generic_args, tid, span):
    return VInt(bin(recv.ty.wrap(recv.value) & ((1 << recv.ty.bits) - 1)).count("1"),
                ty.U32)


INT_METHODS = {
    "wrapping_add": _int_binop_method("wrapping_add"),
    "wrapping_sub": _int_binop_method("wrapping_sub"),
    "wrapping_mul": _int_binop_method("wrapping_mul"),
    "saturating_add": _int_binop_method("saturating_add"),
    "saturating_sub": _int_binop_method("saturating_sub"),
    "saturating_mul": _int_binop_method("saturating_mul"),
    "checked_add": method_int_checked_add,
    "pow": method_int_pow,
    "to_le_bytes": method_int_to_le_bytes,
    "abs": method_int_abs,
    "min": method_int_min,
    "max": method_int_max,
    "count_ones": method_int_count_ones,
}


# ---------------------------------------------------------------------------
# Option / Result


def method_option_unwrap(interp, recv: VOption, args, generic_args, tid, span):
    if recv.inner is None:
        raise PanicSignal("called `Option::unwrap()` on a `None` value", span)
    return recv.inner


def method_option_expect(interp, recv: VOption, args, generic_args, tid, span):
    if recv.inner is None:
        message = args[0].value if args and isinstance(args[0], VStr) else "expect failed"
        raise PanicSignal(message, span)
    return recv.inner


def method_option_is_some(interp, recv, args, generic_args, tid, span):
    return VBool(recv.inner is not None)


def method_option_is_none(interp, recv, args, generic_args, tid, span):
    return VBool(recv.inner is None)


def method_option_unwrap_or(interp, recv, args, generic_args, tid, span):
    return recv.inner if recv.inner is not None else args[0]


OPTION_METHODS = {
    "unwrap": method_option_unwrap,
    "expect": method_option_expect,
    "is_some": method_option_is_some,
    "is_none": method_option_is_none,
    "unwrap_or": method_option_unwrap_or,
}


# ---------------------------------------------------------------------------
# std::alloc


def shim_layout_new(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    return VLayout(ty.size_of(target, interp.memory.structs),
                   ty.align_of(target, interp.memory.structs))


def shim_layout_from_size_align(interp, args, generic_args, tid, span):
    size, align = _int(args[0], span), _int(args[1], span)
    if align == 0 or (align & (align - 1)) != 0:
        return VOption(None, ty.TyPath("Layout"))
    return VOption(VLayout(size, align), ty.TyPath("Layout"))


def shim_layout_array(interp, args, generic_args, tid, span):
    target = _layout_of(generic_args, interp, span)
    count = _int(args[0], span)
    return VOption(
        VLayout(ty.size_of(target, interp.memory.structs) * count,
                ty.align_of(target, interp.memory.structs)),
        ty.TyPath("Layout"),
    )


def _as_layout(value: Value, span: Span) -> VLayout:
    if isinstance(value, VLayout):
        return value
    if isinstance(value, VOption) and isinstance(value.inner, VLayout):
        return value.inner
    raise InterpUnsupported("expected Layout", span)


def shim_alloc(interp, args, generic_args, tid, span):
    layout = _as_layout(args[0], span)
    if layout.size == 0:
        raise UbSignal(MiriError(
            UbKind.ALLOC,
            "creating allocation with size 0 is undefined behavior in "
            "`alloc` (use `Layout` of nonzero size)",
            span,
        ))
    alloc = interp.memory.allocate(layout.size, layout.align, AllocKind.HEAP,
                                   "heap allocation")
    return VPtr(alloc.id, alloc.base_addr, alloc.base_tag, ty.U8, mutable=True)


def shim_alloc_zeroed(interp, args, generic_args, tid, span):
    ptr = shim_alloc(interp, args, generic_args, tid, span)
    alloc = interp.memory.allocations[ptr.alloc_id]
    for index in range(alloc.size):
        alloc.init[index] = 1
    return ptr


def shim_dealloc(interp, args, generic_args, tid, span):
    pointer = _ptr(args[0], span)
    layout = _as_layout(args[1], span)
    if pointer.alloc_id is None:
        raise UbSignal(MiriError(
            UbKind.PROVENANCE,
            "deallocating a pointer that has no provenance", span))
    interp.memory.deallocate(pointer.alloc_id, span,
                             expected_size=layout.size,
                             expected_align=layout.align)
    return UNIT


# ---------------------------------------------------------------------------
# Threads / sync


def shim_thread_spawn(interp, args, generic_args, tid, span):
    closure = args[0]
    return interp.spawn_thread(closure, tid, span)


def shim_thread_sleep(interp, args, generic_args, tid, span):
    return UNIT


def shim_mutex_new(interp, args, generic_args, tid, span):
    return interp.make_mutex(args[0], generic_args, tid, span)


def shim_atomic_new(interp, args, generic_args, tid, span):
    # Atomics are represented as their raw value; the *allocation* they land
    # in becomes the synchronisation object.
    return args[0]


def method_handle_join(interp, recv: VThreadHandle, args, generic_args, tid, span):
    return interp.join_thread(recv, tid, span)


def method_mutex_lock(interp, place, args, generic_args, tid, span):
    return interp.lock_mutex(place, tid, span)


# ---------------------------------------------------------------------------
# from_le_bytes / from_be_bytes


def _shim_from_bytes(int_name: str, endian: str):
    def shim(interp, args, generic_args, tid, span):
        target = ty.INT_TYPES[int_name]
        value = args[0]
        if isinstance(value, VAggregate):
            data = bytes(_int(e, span) & 0xFF for e in value.elems)
        else:
            raise InterpUnsupported("from_*_bytes expects a byte array", span)
        if len(data) != target.bits // 8:
            from .errors import CompileError
            raise CompileError(
                f"{int_name}::from_{endian}_bytes expects "
                f"[u8; {target.bits // 8}], got [u8; {len(data)}]",
                span,
            )
        return VInt(
            int.from_bytes(data, "little" if endian == "le" else "big",
                           signed=target.signed),
            target,
        )
    return shim


# ---------------------------------------------------------------------------
# Registry

CALL_SHIMS = {
    "mem::transmute": shim_transmute,
    "transmute": shim_transmute,
    "mem::size_of": shim_size_of,
    "size_of": shim_size_of,
    "mem::align_of": shim_align_of,
    "align_of": shim_align_of,
    "mem::forget": shim_forget,
    "forget": shim_forget,
    "mem::zeroed": shim_zeroed,
    "zeroed": shim_zeroed,
    "mem::swap": shim_swap,
    "swap": shim_swap,
    "mem::replace": shim_replace,
    "replace": shim_replace,
    "mem::drop": shim_drop,
    "drop": shim_drop,
    "ptr::null": shim_ptr_null,
    "ptr::null_mut": shim_ptr_null_mut,
    "ptr::read": shim_ptr_read,
    "ptr::write": shim_ptr_write,
    "ptr::copy": shim_ptr_copy,
    "ptr::copy_nonoverlapping": shim_ptr_copy,
    "Box::new": shim_box_new,
    "Box::into_raw": shim_box_into_raw,
    "Box::from_raw": shim_box_from_raw,
    "Box::leak": shim_box_leak,
    "Vec::new": shim_vec_new,
    "Vec::with_capacity": shim_vec_with_capacity,
    "MaybeUninit::uninit": shim_maybe_uninit_uninit,
    "MaybeUninit::zeroed": shim_maybe_uninit_zeroed,
    "MaybeUninit::new": shim_maybe_uninit_new,
    "Layout::new": shim_layout_new,
    "Layout::from_size_align": shim_layout_from_size_align,
    "Layout::array": shim_layout_array,
    "alloc::alloc": shim_alloc,
    "alloc": shim_alloc,
    "alloc::alloc_zeroed": shim_alloc_zeroed,
    "alloc_zeroed": shim_alloc_zeroed,
    "alloc::dealloc": shim_dealloc,
    "dealloc": shim_dealloc,
    "thread::spawn": shim_thread_spawn,
    "thread::sleep": shim_thread_sleep,
    "Mutex::new": shim_mutex_new,
    "AtomicUsize::new": shim_atomic_new,
    "AtomicI64::new": shim_atomic_new,
    "AtomicBool::new": shim_atomic_new,
    "hint::black_box": lambda interp, args, g, tid, span: args[0],
    "black_box": lambda interp, args, g, tid, span: args[0],
    "char::from_u32": lambda interp, args, g, tid, span: _char_from_u32(args, span),
}


def _char_from_u32(args, span):
    code = _int(args[0], span)
    if code > 0x10FFFF or 0xD800 <= code <= 0xDFFF:
        return VOption(None, ty.CHAR)
    from .values import VChar
    return VOption(VChar(chr(code)), ty.CHAR)

for _name in ty.INT_TYPES:
    CALL_SHIMS[f"{_name}::from_le_bytes"] = _shim_from_bytes(_name, "le")
    CALL_SHIMS[f"{_name}::from_be_bytes"] = _shim_from_bytes(_name, "be")


def normalize_path(segments: list[str]) -> str:
    """Strip the ``std``/``core``/``sync``/``atomic`` prefixes from a path."""
    parts = [s for s in segments if s not in ("std", "core", "sync", "atomic", "hint")]
    return "::".join(parts)
