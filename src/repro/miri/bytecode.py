"""Bytecode compiler for the mini-Rust interpreter hot path.

:func:`compile_program` lowers a parsed :class:`~repro.lang.ast_nodes.Program`
to flat per-function instruction lists that the stack VM in
:mod:`repro.miri.vm` executes.  The lowering is *semantics-free*: every
memory access, borrow retag, race check, and unsafe-context rule still
runs through the exact :class:`~repro.miri.interp.Interpreter` methods the
tree-walker uses (the VM is an ``Interpreter`` subclass) — the compiler
only pre-resolves what the tree-walker re-discovers on every visit:

* dynamic ``getattr`` dispatch becomes an opcode (or, for rarely-executed
  node kinds such as macros, one pre-bound handler reference per site);
* literal values become shared frozen constants instead of per-visit
  allocations;
* ``CALL_SHIMS`` lookups and their unsafe-shim classification happen once
  per call site (``CALL_SHIM`` carries the pre-bound shim function);
* ``break``/``continue``/error-collection recovery becomes a static
  exception table per code object instead of nested Python ``try`` frames.

**Fuel/step parity is the load-bearing invariant.**  The tree-walker burns
one fuel unit per statement, per expression evaluation, per place
evaluation, and per loop iteration; every burn is reproduced here at the
same program point (either as an explicit ``BURN`` or fused into a
``*_B``-suffixed opcode), so ``MiriReport.steps`` — and therefore every
fuel-exhaustion verdict — is byte-identical between engines.  The
differential suite (``tests/miri/test_differential.py``) gates this.

Compiled programs are plain picklable dataclasses (instruction operands
are frozen values, AST node references, and module-level functions), so
shards can ship them across process pools.  :func:`compile_source`
memoizes compilation per exact source text.  The memo deliberately keys
on the **text**, not on :func:`~repro.miri.fingerprint.source_fingerprint`:
fingerprint-equal sources differ in spans and identifier spellings, and
the detector's reports must quote the caller's exact source — fingerprint
dedup stays where it already lives, in :func:`~repro.miri.detect_ub_batch`
and the :class:`~repro.miri.BatchVerifier` above this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..lang import ast_nodes as ast
from ..lang import types as ty
from ..lang.span import Span
from .interp import _UNSAFE_SHIMS, Interpreter
from .shims import CALL_SHIMS, normalize_path
from .values import UNIT_VALUE, VBool, VChar, VInt, VStr

# ---------------------------------------------------------------------------
# Opcodes.  Integer constants (not an Enum) keep dispatch comparisons cheap
# in the VM's inner loop.  ``*_B`` opcodes fuse the tree-walker's
# entry burn with their action.

OP_BURN = 0            # burn(span)
OP_PUSH = 1            # push constant value
OP_PUSH_B = 2          # burn + push constant value
OP_POP = 3             # discard top of stack
OP_DUP = 4             # duplicate top of stack
OP_JUMP = 5            # unconditional jump; arg = target ip
OP_IF_FALSE = 6        # pop cond; arg = (target, message)
OP_EVAL_B = 7          # burn; arg = (handler, node): push handler(vm, node, env, tid)
OP_PLACE_NAME_B = 8    # burn; arg = (name, for_write): push place
OP_DEREF_PLACE = 9     # pop value; arg = for_write: push deref place
OP_AUTODEREF = 10      # pop place; push autoderef'd place
OP_FIELD_PLACE = 11    # pop place; arg = field name: push field place
OP_INDEX_PLACE = 12    # pop index, place; push element place
OP_TEMP_PLACE = 13     # pop value; push temporary place
OP_READ = 14           # pop place; push loaded value
OP_STORE = 15          # pop place, value; write; push unit
OP_COMPOUND = 16       # pop operand, current, place; arg = op; write; push unit
OP_BINOP = 17          # pop right, left; arg = op; push result
OP_UNOP = 18           # pop value; arg = op; push result
OP_BOOL_CIRCUIT = 19   # pop left; arg = (target, is_and); maybe short-circuit
OP_BOOL_TAIL = 20      # pop right; push VBool(right.value)
OP_REF = 21            # pop place; arg = mutable: push reference
OP_MAKE_TUPLE = 22     # pop n elems; arg = n
OP_MAKE_ARRAY = 23     # pop n elems; arg = n
OP_MAKE_REPEAT = 24    # pop count, elem
OP_CHECK_STRUCT = 25   # arg = struct name; raise unless registered
OP_MAKE_STRUCT = 26    # pop n field values; arg = (node, n)
OP_MAKE_RANGE = 27     # pop hi, lo; arg = inclusive
OP_MAKE_CLOSURE_B = 28  # burn; arg = Closure node: push VClosure
OP_CAST = 29           # pop value; arg = target type
OP_CALL_PATH = 30      # pop argc args; arg = (node, argc): runtime resolution
OP_CALL_SHIM = 31      # pop argc args; arg = (shim, unsafe_label, node, argc)
OP_CALL_SOME = 32      # pop argc args; arg = argc: push VOption
OP_CALL_VALUE = 33     # pop callee, argc args; arg = argc
OP_METHOD_PLACE = 34   # pop place, argc args; arg = (node, argc)
OP_METHOD_VALUE = 35   # pop value, argc args; arg = (node, argc)
OP_PUSH_SCOPE = 36     # arg = is_unsafe
OP_POP_SCOPE = 37      # arg = is_unsafe
OP_LET_BIND = 38       # pop value; arg = LetStmt node
OP_DECLARE = 39        # arg = LetStmt node (no initializer)
OP_RAISE_COMPILE = 40  # arg = message
OP_RAISE_UNSUPPORTED = 41  # arg = message
OP_RAISE_RETURN = 42   # pop value; raise _Return
OP_RAISE_BREAK = 43    # pop value; raise _Break
OP_RAISE_CONTINUE = 44  # raise _Continue
OP_FOR_SETUP = 45      # pop iterable; arg = var name; push loop state
OP_FOR_NEXT = 46       # arg = exit target; step or jump
OP_END_FOR = 47        # pop loop state; pop scope; push unit

OP_NAMES = {value: name[3:] for name, value in sorted(globals().items())
            if name.startswith("OP_")}

#: Exception-table kinds.
K_COLLECT = 0
K_BREAK = 1
K_BREAK_VALUE = 2
K_CONTINUE = 3

K_NAMES = {K_COLLECT: "collect", K_BREAK: "break",
           K_BREAK_VALUE: "break_value", K_CONTINUE: "continue"}


class BytecodeError(Exception):
    """An internal compiler failure (never a property of the *program*:
    unsupported constructs lower to the tree-walker's own raising
    behaviour).  Callers fall back to the tree engine when they see it."""


@dataclass(frozen=True)
class Handler:
    """One exception-table entry: while ``start <= ip < end``, an escaping
    signal of ``kind`` restores the recorded stack/scope/unsafe depths and
    resumes at ``target``."""

    start: int
    end: int
    kind: int
    target: int
    depth: int
    scope_depth: int
    unsafe_offset: int


@dataclass
class Code:
    """One compiled execution unit (function body, closure body, or
    const/static initializer).  ``instrs`` is a tuple of
    ``(opcode, operand, span)`` triples; executing a ``Code`` leaves
    exactly one value on the operand stack."""

    name: str
    instrs: tuple = ()
    handlers: tuple = ()


@dataclass
class CompiledProgram:
    """A program plus every compiled code object, keyed by ``node_id``
    within ``program`` (function bodies by ``FnItem.node_id``, closure
    codes by their *body* node, initializers by item node)."""

    program: ast.Program
    fn_codes: dict = field(default_factory=dict)
    closure_codes: dict = field(default_factory=dict)
    init_codes: dict = field(default_factory=dict)
    source: str | None = None

    def codes(self) -> list[tuple[str, Code]]:
        """Every compiled unit with a stable label, for diagnostics."""
        out = []
        out.extend(("fn", code) for code in self.fn_codes.values())
        out.extend(("closure", code) for code in self.closure_codes.values())
        out.extend(("init", code) for code in self.init_codes.values())
        return [(code.name, code) for _kind, code in out]


# ---------------------------------------------------------------------------
# Compiler

#: Statically-resolvable expression node types; everything else delegates
#: to the tree-walker's handler through ``EVAL_B`` (MacroCall today).
_INT_TYPES = ty.INT_TYPES


def _literal_value(expr: ast.Expr):
    """The constant a literal node evaluates to, or None."""
    if isinstance(expr, ast.IntLit):
        int_ty = _INT_TYPES.get(expr.suffix or "i32", ty.I32)
        return VInt(expr.value, int_ty)
    if isinstance(expr, ast.BoolLit):
        return VBool(expr.value)
    if isinstance(expr, ast.CharLit):
        return VChar(expr.value)
    if isinstance(expr, ast.StrLit):
        return VStr(expr.value)
    return None


class _UnitCompiler:
    """Compiles one execution unit into a :class:`Code`.

    Tracks the simulated operand-stack depth, lexical scope depth, and
    unsafe-block offset at every instruction so exception-table entries
    can restore them exactly; a simulation mismatch is a compiler bug and
    raises :class:`BytecodeError` (callers then fall back to the tree
    engine rather than risk a wrong report).
    """

    def __init__(self, name: str, closures: list | None = None):
        self.name = name
        self.instrs: list[tuple] = []
        self.handlers: list[Handler] = []
        self.closures = closures
        self.depth = 0
        self.scope_depth = 0
        self.unsafe_offset = 0

    # -- emission helpers --------------------------------------------------

    def emit(self, op: int, arg, span: Span, delta: int) -> int:
        index = len(self.instrs)
        self.instrs.append((op, arg, span))
        self.depth += delta
        if self.depth < 0:
            raise BytecodeError(
                f"{self.name}: stack underflow at instruction {index}")
        return index

    def patch(self, index: int, target: int) -> None:
        op, arg, span = self.instrs[index]
        if op == OP_IF_FALSE:
            arg = (target, arg[1])
        elif op == OP_BOOL_CIRCUIT:
            arg = (target, arg[1])
        else:
            arg = target
        self.instrs[index] = (op, arg, span)

    def here(self) -> int:
        return len(self.instrs)

    def finish(self) -> Code:
        if self.depth != 1:
            raise BytecodeError(
                f"{self.name}: code ends with stack depth {self.depth}")
        if self.scope_depth or self.unsafe_offset:
            raise BytecodeError(f"{self.name}: unbalanced scopes")
        return Code(self.name, tuple(self.instrs), tuple(self.handlers))

    # -- blocks and statements --------------------------------------------

    def block(self, block: ast.Block) -> None:
        """Scope code: mirrors ``Interpreter.eval_block`` (no entry burn)."""
        self.emit(OP_PUSH_SCOPE, block.is_unsafe, block.span, 0)
        self.scope_depth += 1
        if block.is_unsafe:
            self.unsafe_offset += 1
        for stmt in block.stmts:
            self.stmt(stmt)
        if block.tail is not None:
            self.expr(block.tail)
        else:
            self.emit(OP_PUSH, UNIT_VALUE, block.span, +1)
        self.scope_depth -= 1
        if block.is_unsafe:
            self.unsafe_offset -= 1
        self.emit(OP_POP_SCOPE, block.is_unsafe, block.span, 0)

    def stmt(self, stmt: ast.Stmt) -> None:
        start = self.here()
        base_depth = self.depth
        self.emit(OP_BURN, None, stmt.span, 0)
        if isinstance(stmt, ast.LetStmt):
            if stmt.init is None:
                if stmt.ty is None:
                    self.emit(OP_RAISE_COMPILE,
                              f"type annotations needed for `{stmt.name}`",
                              stmt.span, 0)
                else:
                    self.emit(OP_DECLARE, stmt, stmt.span, 0)
            else:
                self.expr(stmt.init)
                self.emit(OP_LET_BIND, stmt, stmt.span, -1)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
            self.emit(OP_POP, None, stmt.span, -1)
        else:
            self.emit(OP_RAISE_UNSUPPORTED,
                      f"statement {type(stmt).__name__}", stmt.span, 0)
        # Error-collection recovery point: mirror the per-statement
        # UbSignal/CompileError catch in ``Interpreter._exec_stmt``.
        self.handlers.append(Handler(start, self.here(), K_COLLECT,
                                     self.here(), base_depth,
                                     self.scope_depth, self.unsafe_offset))

    # -- places ------------------------------------------------------------

    def place(self, expr: ast.Expr, for_write: bool) -> None:
        """Mirror ``Interpreter.eval_place`` (entry burn + dispatch)."""
        if isinstance(expr, ast.PathExpr) and expr.is_local:
            self.emit(OP_PLACE_NAME_B, (expr.name, for_write), expr.span, +1)
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            self.emit(OP_BURN, None, expr.span, 0)
            self.expr(expr.operand)
            self.emit(OP_DEREF_PLACE, for_write, expr.span, 0)
            return
        if isinstance(expr, ast.FieldAccess):
            self.emit(OP_BURN, None, expr.span, 0)
            self.place(expr.obj, False)
            self.emit(OP_AUTODEREF, None, expr.span, 0)
            self.emit(OP_FIELD_PLACE, expr.field, expr.span, 0)
            return
        if isinstance(expr, ast.Index):
            self.emit(OP_BURN, None, expr.span, 0)
            self.place(expr.obj, False)
            self.emit(OP_AUTODEREF, None, expr.span, 0)
            self.expr(expr.index)
            self.emit(OP_INDEX_PLACE, None, expr.span, -1)
            return
        # Not a place: materialize a temporary (burn for eval_place, then
        # the expression's own evaluation burn).
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr)
        self.emit(OP_TEMP_PLACE, None, expr.span, 0)

    # -- expressions -------------------------------------------------------

    def expr(self, expr: ast.Expr) -> None:
        literal = _literal_value(expr)
        if literal is not None:
            self.emit(OP_PUSH_B, literal, expr.span, +1)
            return
        method = getattr(self, f"_c_{type(expr).__name__}", None)
        if method is not None:
            method(expr)
            return
        handler = getattr(Interpreter, f"_eval_{type(expr).__name__}", None)
        if handler is None:
            # eval_expr burns, then reports the unsupported node.
            self.emit(OP_BURN, None, expr.span, 0)
            self.emit(OP_RAISE_UNSUPPORTED,
                      f"expression {type(expr).__name__}", expr.span, 0)
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)  # unreachable
            return
        self.emit(OP_EVAL_B, (handler, expr), expr.span, +1)

    def _c_PathExpr(self, expr: ast.PathExpr) -> None:
        self.emit(OP_EVAL_B, (Interpreter._eval_PathExpr, expr),
                  expr.span, +1)

    def _c_Unary(self, expr: ast.Unary) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        if expr.op == "*":
            self.expr(expr.operand)
            self.emit(OP_DEREF_PLACE, False, expr.span, 0)
            self.emit(OP_READ, None, expr.span, 0)
            return
        if expr.op in ("&", "&mut"):
            mutable = expr.op == "&mut"
            self.place(expr.operand, mutable)
            self.emit(OP_REF, mutable, expr.span, 0)
            return
        self.expr(expr.operand)
        self.emit(OP_UNOP, expr.op, expr.span, 0)

    def _c_Binary(self, expr: ast.Binary) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        if expr.op in ("&&", "||"):
            self.expr(expr.left)
            circuit = self.emit(OP_BOOL_CIRCUIT, (None, expr.op == "&&"),
                                expr.span, -1)
            self.expr(expr.right)
            self.emit(OP_BOOL_TAIL, None, expr.span, 0)
            self.patch(circuit, self.here())
            return
        self.expr(expr.left)
        self.expr(expr.right)
        self.emit(OP_BINOP, expr.op, expr.span, -1)

    def _c_Assign(self, expr: ast.Assign) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.value)
        self.place(expr.target, True)
        self.emit(OP_STORE, None, expr.span, -1)

    def _c_CompoundAssign(self, expr: ast.CompoundAssign) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.place(expr.target, True)
        self.emit(OP_DUP, None, expr.span, +1)
        self.emit(OP_READ, None, expr.span, 0)
        self.expr(expr.value)
        self.emit(OP_COMPOUND, expr.op, expr.span, -2)

    def _c_Call(self, expr: ast.Call) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        for arg in expr.args:
            self.expr(arg)
        argc = len(expr.args)
        callee = expr.func
        if isinstance(callee, ast.PathExpr):
            if callee.is_local:
                self.emit(OP_CALL_PATH, (callee, argc), expr.span, -argc + 1)
                return
            normalized = normalize_path(callee.segments)
            shim = CALL_SHIMS.get(normalized)
            if shim is not None:
                label = (f"call to `{callee.full}`"
                         if normalized in _UNSAFE_SHIMS else None)
                self.emit(OP_CALL_SHIM, (shim, label, callee, argc),
                          expr.span, -argc + 1)
                return
            if normalized == "Some":
                self.emit(OP_CALL_SOME, argc, expr.span, -argc + 1)
                return
            self.emit(OP_RAISE_COMPILE,
                      f"cannot find function `{callee.full}` in this scope",
                      expr.span, 0)
            self.depth -= argc  # unreachable: rebalance the simulation
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)
            return
        self.expr(callee)
        self.emit(OP_CALL_VALUE, argc, expr.span, -argc)

    def _c_MethodCall(self, expr: ast.MethodCall) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        for arg in expr.args:
            self.expr(arg)
        argc = len(expr.args)
        receiver = expr.receiver
        is_place_expr = isinstance(
            receiver, (ast.PathExpr, ast.FieldAccess, ast.Index)
        ) or (isinstance(receiver, ast.Unary) and receiver.op == "*")
        if is_place_expr:
            self.place(receiver, False)
            self.emit(OP_METHOD_PLACE, (expr, argc), expr.span, -argc)
        else:
            self.expr(receiver)
            self.emit(OP_METHOD_VALUE, (expr, argc), expr.span, -argc)

    def _c_FieldAccess(self, expr: ast.FieldAccess) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.place(expr.obj, False)
        self.emit(OP_AUTODEREF, None, expr.span, 0)
        self.emit(OP_FIELD_PLACE, expr.field, expr.span, 0)
        self.emit(OP_READ, None, expr.span, 0)

    def _c_Index(self, expr: ast.Index) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.place(expr.obj, False)
        self.emit(OP_AUTODEREF, None, expr.span, 0)
        self.expr(expr.index)
        self.emit(OP_INDEX_PLACE, None, expr.span, -1)
        self.emit(OP_READ, None, expr.span, 0)

    def _c_Cast(self, expr: ast.Cast) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.expr)
        self.emit(OP_CAST, expr.ty, expr.span, 0)

    def _c_TupleLit(self, expr: ast.TupleLit) -> None:
        if not expr.elems:
            self.emit(OP_PUSH_B, UNIT_VALUE, expr.span, +1)
            return
        self.emit(OP_BURN, None, expr.span, 0)
        for elem in expr.elems:
            self.expr(elem)
        self.emit(OP_MAKE_TUPLE, len(expr.elems), expr.span,
                  -len(expr.elems) + 1)

    def _c_ArrayLit(self, expr: ast.ArrayLit) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        for elem in expr.elems:
            self.expr(elem)
        self.emit(OP_MAKE_ARRAY, len(expr.elems), expr.span,
                  -len(expr.elems) + 1)

    def _c_ArrayRepeat(self, expr: ast.ArrayRepeat) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.elem)
        self.expr(expr.count)
        self.emit(OP_MAKE_REPEAT, None, expr.span, -1)

    def _c_StructLit(self, expr: ast.StructLit) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.emit(OP_CHECK_STRUCT, expr.name, expr.span, 0)
        for _name, value in expr.fields:
            self.expr(value)
        self.emit(OP_MAKE_STRUCT, (expr, len(expr.fields)), expr.span,
                  -len(expr.fields) + 1)

    def _c_RangeExpr(self, expr: ast.RangeExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        if expr.lo is not None:
            self.expr(expr.lo)
        else:
            self.emit(OP_PUSH, VInt(0, ty.I64), expr.span, +1)
        if expr.hi is None:
            self.emit(OP_RAISE_UNSUPPORTED, "unbounded ranges", expr.span, 0)
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)  # unreachable
            self.emit(OP_MAKE_RANGE, expr.inclusive, expr.span, -1)
            return
        self.expr(expr.hi)
        self.emit(OP_MAKE_RANGE, expr.inclusive, expr.span, -1)

    def _c_Closure(self, expr: ast.Closure) -> None:
        if self.closures is not None:
            self.closures.append(expr)
        self.emit(OP_MAKE_CLOSURE_B, expr, expr.span, +1)

    def _c_Block(self, expr: ast.Block) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.block(expr)

    def _c_IfExpr(self, expr: ast.IfExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.cond)
        branch = self.emit(OP_IF_FALSE,
                           (None, "`if` condition must be `bool`"),
                           expr.span, -1)
        self.block(expr.then_block)
        self.depth -= 1  # branches merge: only one side executes
        skip = self.emit(OP_JUMP, None, expr.span, 0)
        self.patch(branch, self.here())
        if expr.else_block is None:
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)
        elif isinstance(expr.else_block, ast.Block):
            self.block(expr.else_block)
        else:
            self.expr(expr.else_block)
        self.patch(skip, self.here())

    def _c_WhileExpr(self, expr: ast.WhileExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        base_depth = self.depth
        head = self.here()
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.cond)
        branch = self.emit(OP_IF_FALSE,
                           (None, "`while` condition must be `bool`"),
                           expr.span, -1)
        body_start = self.here()
        self.block(expr.body)
        self.emit(OP_POP, None, expr.span, -1)
        jump = self.emit(OP_JUMP, head, expr.span, 0)
        body_end = self.here()
        self.patch(branch, body_end)
        self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)
        self.handlers.append(Handler(body_start, body_end, K_BREAK, body_end,
                                     base_depth, self.scope_depth,
                                     self.unsafe_offset))
        self.handlers.append(Handler(body_start, body_end, K_CONTINUE, head,
                                     base_depth, self.scope_depth,
                                     self.unsafe_offset))

    def _c_LoopExpr(self, expr: ast.LoopExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        base_depth = self.depth
        head = self.here()
        self.emit(OP_BURN, None, expr.span, 0)
        body_start = self.here()
        self.block(expr.body)
        self.emit(OP_POP, None, expr.span, -1)
        self.emit(OP_JUMP, head, expr.span, 0)
        body_end = self.here()
        # Normal exit is only through `break value` — the handler pushes it.
        self.depth += 1
        self.handlers.append(Handler(body_start, body_end, K_BREAK_VALUE,
                                     body_end, base_depth, self.scope_depth,
                                     self.unsafe_offset))
        self.handlers.append(Handler(body_start, body_end, K_CONTINUE, head,
                                     base_depth, self.scope_depth,
                                     self.unsafe_offset))

    def _c_ForExpr(self, expr: ast.ForExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.expr(expr.iterable)
        self.emit(OP_FOR_SETUP, expr.var, expr.span, 0)
        self.scope_depth += 1
        state_depth = self.depth
        head = self.here()
        step = self.emit(OP_FOR_NEXT, None, expr.span, 0)
        body_start = self.here()
        self.block(expr.body)
        self.emit(OP_POP, None, expr.span, -1)
        self.emit(OP_JUMP, head, expr.span, 0)
        body_end = self.here()
        self.patch(step, body_end)
        self.emit(OP_END_FOR, None, expr.span, 0)
        self.scope_depth -= 1
        self.handlers.append(Handler(body_start, body_end, K_BREAK, body_end,
                                     state_depth, self.scope_depth + 1,
                                     self.unsafe_offset))
        self.handlers.append(Handler(body_start, body_end, K_CONTINUE, head,
                                     state_depth, self.scope_depth + 1,
                                     self.unsafe_offset))

    def _c_ReturnExpr(self, expr: ast.ReturnExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        if expr.value is not None:
            self.expr(expr.value)
        else:
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)
        self.emit(OP_RAISE_RETURN, None, expr.span, 0)

    def _c_BreakExpr(self, expr: ast.BreakExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        if expr.value is not None:
            self.expr(expr.value)
        else:
            self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)
        self.emit(OP_RAISE_BREAK, None, expr.span, 0)

    def _c_ContinueExpr(self, expr: ast.ContinueExpr) -> None:
        self.emit(OP_BURN, None, expr.span, 0)
        self.emit(OP_RAISE_CONTINUE, None, expr.span, 0)
        self.emit(OP_PUSH, UNIT_VALUE, expr.span, +1)  # unreachable


def _compile_block_code(block: ast.Block, name: str,
                        closures: list | None = None) -> Code:
    unit = _UnitCompiler(name, closures)
    unit.block(block)
    return unit.finish()


def _compile_expr_code(expr: ast.Expr, name: str,
                       closures: list | None = None) -> Code:
    unit = _UnitCompiler(name, closures)
    unit.expr(expr)
    return unit.finish()


def compile_program(program: ast.Program,
                    source: str | None = None) -> CompiledProgram:
    """Compile every function body, closure body, and const/static
    initializer of ``program``.  Raises :class:`BytecodeError` on an
    internal lowering failure (callers fall back to the tree engine).

    Closure bodies are collected on a worklist as each unit compiles its
    ``MAKE_CLOSURE`` sites (no whole-program walk); a closure nested in an
    expression the compiler only lowers as an opaque tree-eval is simply
    left uncompiled, and the VM's closure-body hook falls back to the tree
    engine for it.
    """
    try:
        compiled = CompiledProgram(program, source=source)
        pending: list[ast.Closure] = []
        for item in program.items:
            if isinstance(item, ast.FnItem):
                compiled.fn_codes[item.node_id] = _compile_block_code(
                    item.body, f"fn {item.name}", pending)
            elif isinstance(item, (ast.ConstItem, ast.StaticItem)):
                compiled.init_codes[item.node_id] = _compile_expr_code(
                    item.init, f"init {item.name}", pending)
        while pending:
            node = pending.pop()
            body = node.body
            if body.node_id in compiled.closure_codes:
                continue
            name = f"closure@{node.span.line}:{node.span.col}"
            if isinstance(body, ast.Block):
                code = _compile_block_code(body, name, pending)
            else:
                code = _compile_expr_code(body, name, pending)
            compiled.closure_codes[body.node_id] = code
        return compiled
    except BytecodeError:
        raise
    except Exception as exc:  # pragma: no cover - compiler bug guard
        raise BytecodeError(f"lowering failed: {exc!r}") from exc


@lru_cache(maxsize=512)
def compile_source(source: str) -> CompiledProgram:
    """Parse (through the parser's memo) and compile ``source``, memoized
    per exact text.

    The compiled program owns its AST: it compiles against the parser
    memo's private tree, which :func:`~repro.lang.parser.parse_program`
    never hands to callers un-cloned — so the cached code can never be
    invalidated by an agent rewriting a returned tree in place.  This is
    also the VM's structural speed win: a memo hit skips both the parse
    *and* the per-run ``ast.clone`` deep copy the tree engine pays.
    """
    from ..lang.parser import _parse_program_cached
    program = _parse_program_cached(source)
    compiled = compile_program(program, source=source)
    from . import DETECTOR_STATS
    DETECTOR_STATS.record(compiles=1)
    return compiled


def compile_cache_info():
    """The compile memo's ``lru_cache`` statistics (diagnostics/tests)."""
    return compile_source.cache_info()


# ---------------------------------------------------------------------------
# Disassembler


def _arg_repr(op: int, arg) -> str:
    if arg is None:
        return ""
    if op == OP_EVAL_B:
        handler, node = arg
        return f"{handler.__name__} {type(node).__name__}#{node.node_id}"
    if op == OP_CALL_SHIM:
        shim, label, node, argc = arg
        unsafe = " unsafe" if label else ""
        return f"{shim.__name__}/{argc}{unsafe}"
    if op in (OP_CALL_PATH, OP_METHOD_PLACE, OP_METHOD_VALUE,
              OP_MAKE_STRUCT):
        node, argc = arg
        return f"{type(node).__name__}#{node.node_id}/{argc}"
    if op in (OP_LET_BIND, OP_DECLARE, OP_MAKE_CLOSURE_B):
        return f"{type(arg).__name__}#{arg.node_id}"
    if op == OP_CAST:
        return str(arg)
    return repr(arg)


def disassemble(code: Code) -> str:
    """Human-readable (and deterministic) listing of one code object."""
    lines = [f"{code.name}:"]
    for index, (op, arg, span) in enumerate(code.instrs):
        name = OP_NAMES.get(op, f"OP{op}")
        rendered = _arg_repr(op, arg)
        location = f"@{span.line}:{span.col}" if span.line else ""
        lines.append(f"  {index:4d}  {name:14s} {rendered:<40s} {location}"
                     .rstrip())
    for handler in code.handlers:
        lines.append(
            f"  handler {K_NAMES[handler.kind]:11s} "
            f"[{handler.start},{handler.end}) -> {handler.target} "
            f"depth={handler.depth} scopes={handler.scope_depth} "
            f"unsafe={handler.unsafe_offset}")
    return "\n".join(lines)


def disassemble_program(compiled: CompiledProgram) -> str:
    """Listing of every code object, in deterministic program order."""
    sections = [disassemble(code) for _name, code in compiled.codes()]
    return "\n\n".join(sections)
