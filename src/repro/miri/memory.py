"""Byte-level memory model: allocations, provenance, init tracking.

Every allocation gets a virtual base address (never reused, so absolute
addresses can be checked for alignment) and carries:

* raw bytes plus a per-byte *initialized* mask (reads of uninit bytes → UB);
* a relocation table ``offset → (alloc_id, tag, extra)`` preserving pointer
  provenance through memory round-trips (a pointer read back without its
  relocation has lost provenance);
* a stacked-borrows stack (see :mod:`repro.miri.borrows`).

All loads/stores funnel through :meth:`Memory.read` / :meth:`Memory.write`,
which perform, in order: provenance, liveness, bounds, alignment, borrow
stack, and data-race checks — each failure maps onto the UB category a real
Miri run would report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..lang import types as ty
from ..lang.span import DUMMY_SPAN, Span
from .borrows import BorrowError, BorrowStack
from .errors import MiriError, UbKind, UbSignal
from .races import RaceDetector, RaceError
from .values import (
    VAggregate,
    VBool,
    VChar,
    VFnPtr,
    VInt,
    VLayout,
    VMutexGuard,
    VMutexRef,
    VOption,
    VPtr,
    VStr,
    VThreadHandle,
    VUnit,
    Value,
)

_FN_ADDR_BASE = 0x7F00_0000_0000


class AllocKind(enum.Enum):
    STACK = "stack"
    HEAP = "heap"
    STATIC = "static"
    CONST_STR = "string literal"


@dataclass
class Relocation:
    alloc_id: int | None  # None for function pointers
    tag: int | None
    fn_name: str | None = None
    meta_len: int | None = None


@dataclass
class Allocation:
    id: int
    base_addr: int
    size: int
    align: int
    kind: AllocKind
    data: bytearray
    init: bytearray  # 0 = uninit, 1 = init, per byte
    relocations: dict[int, Relocation] = field(default_factory=dict)
    live: bool = True
    base_tag: int = 0
    borrows: BorrowStack = field(default_factory=BorrowStack)
    label: str = ""
    freed_span: Span | None = None

    def contains(self, offset: int, size: int) -> bool:
        return 0 <= offset and offset + size <= self.size

    def clear_relocations(self, offset: int, size: int) -> None:
        for key in [k for k in self.relocations
                    if offset - 7 <= k < offset + size]:
            # Any overlap clobbers the pointer's provenance bytes.
            if key + 8 > offset and key < offset + size:
                del self.relocations[key]


class Memory:
    """The machine memory: allocation table plus the race detector."""

    def __init__(self):
        self.allocations: dict[int, Allocation] = {}
        self._next_id = 1
        self._next_addr = 0x1000
        self.races = RaceDetector()
        self.structs: dict[str, ty.StructLayout] = {}
        #: fn name → synthetic address, and the reverse map.
        self.fn_addrs: dict[str, int] = {}
        self.fns_by_addr: dict[int, str] = {}
        #: interned string-literal allocations, per machine.
        self._str_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Allocation lifecycle

    def allocate(self, size: int, align: int, kind: AllocKind,
                 label: str = "") -> Allocation:
        align = max(1, align)
        addr = (self._next_addr + align - 1) // align * align
        # Keep a guard gap so distinct allocations never look adjacent.
        self._next_addr = addr + max(size, 1) + 16
        stack, base_tag = BorrowStack.new_allocation()
        alloc = Allocation(
            id=self._next_id,
            base_addr=addr,
            size=size,
            align=align,
            kind=kind,
            data=bytearray(size),
            init=bytearray(size),
            base_tag=base_tag,
            borrows=stack,
            label=label,
        )
        self.allocations[self._next_id] = alloc
        self._next_id += 1
        return alloc

    def deallocate(self, alloc_id: int, span: Span = DUMMY_SPAN,
                   expected_size: int | None = None,
                   expected_align: int | None = None) -> None:
        alloc = self.allocations.get(alloc_id)
        if alloc is None:
            raise UbSignal(MiriError(
                UbKind.ALLOC, "deallocating unknown allocation", span))
        if not alloc.live:
            raise UbSignal(MiriError(
                UbKind.ALLOC,
                f"deallocating {alloc.label or f'alloc{alloc_id}'}, which is "
                f"already deallocated (double free)",
                span,
            ))
        if alloc.kind is AllocKind.STACK:
            raise UbSignal(MiriError(
                UbKind.ALLOC,
                "deallocating stack memory with the global allocator",
                span,
            ))
        if alloc.kind is AllocKind.STATIC:
            raise UbSignal(MiriError(
                UbKind.ALLOC, "deallocating static memory", span))
        if expected_size is not None and expected_size != alloc.size:
            raise UbSignal(MiriError(
                UbKind.ALLOC,
                f"incorrect layout on deallocation: allocation has size "
                f"{alloc.size} and alignment {alloc.align}, but was "
                f"deallocated with size {expected_size}",
                span,
            ))
        if expected_align is not None and expected_align != alloc.align:
            raise UbSignal(MiriError(
                UbKind.ALLOC,
                f"incorrect layout on deallocation: allocation has alignment "
                f"{alloc.align}, but was deallocated with alignment "
                f"{expected_align}",
                span,
            ))
        alloc.live = False
        alloc.freed_span = span

    def fn_addr(self, fn_name: str) -> int:
        addr = self.fn_addrs.get(fn_name)
        if addr is None:
            addr = _FN_ADDR_BASE + 16 * (len(self.fn_addrs) + 1)
            self.fn_addrs[fn_name] = addr
            self.fns_by_addr[addr] = fn_name
        return addr

    def find_by_addr(self, addr: int) -> Allocation | None:
        for alloc in self.allocations.values():
            if alloc.live and alloc.base_addr <= addr < alloc.base_addr + max(alloc.size, 1):
                return alloc
        return None

    # ------------------------------------------------------------------
    # Access checking

    def _resolve(self, ptr: VPtr, size: int, align: int, span: Span,
                 access: str) -> Allocation:
        if ptr.is_null:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER,
                f"memory access failed: null pointer is a dangling pointer "
                f"(it has no provenance)",
                span,
            ))
        if ptr.alloc_id is None:
            raise UbSignal(MiriError(
                UbKind.PROVENANCE,
                f"attempting a {access} access using a pointer that has no "
                f"provenance (forged from an integer: 0x{ptr.addr:x})",
                span,
            ))
        alloc = self.allocations.get(ptr.alloc_id)
        if alloc is None:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER, "pointer to unknown allocation", span))
        if not alloc.live:
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER,
                f"memory access failed: {alloc.label or f'alloc{alloc.id}'} "
                f"has been freed, so this pointer is dangling",
                span,
            ))
        offset = ptr.addr - alloc.base_addr
        if not alloc.contains(offset, size):
            raise UbSignal(MiriError(
                UbKind.DANGLING_POINTER,
                f"memory access failed: expected a pointer to {size} bytes of "
                f"memory, but pointer is {'past the end of' if offset >= 0 else 'before'} "
                f"the allocation ({alloc.label or f'alloc{alloc.id}'} has size "
                f"{alloc.size}, access at offset {offset})",
                span,
            ))
        if align > 1 and ptr.addr % align != 0:
            actual = ptr.addr & -ptr.addr  # largest power of two dividing addr
            raise UbSignal(MiriError(
                UbKind.UNALIGNED,
                f"accessing memory based on pointer with alignment {actual}, "
                f"but alignment {align} is required",
                span,
            ))
        return alloc

    def read_bytes(self, ptr: VPtr, size: int, align: int, tid: int,
                   span: Span = DUMMY_SPAN, require_init: bool = True,
                   ) -> tuple[bytes, dict[int, Relocation]]:
        alloc = self._resolve(ptr, size, align, span, "read")
        offset = ptr.addr - alloc.base_addr
        try:
            alloc.borrows.read(ptr.tag, span)
        except BorrowError as err:
            raise UbSignal(err.error) from None
        try:
            self.races.on_read(tid, alloc.id, offset, size, span)
        except RaceError as err:
            raise UbSignal(err.error) from None
        if require_init and 0 in alloc.init[offset : offset + size]:
            raise UbSignal(MiriError(
                UbKind.UNINIT,
                f"using uninitialized data, but this operation requires "
                f"initialized memory (reading {size} bytes at offset {offset} "
                f"of {alloc.label or f'alloc{alloc.id}'})",
                span,
            ))
        if alloc.relocations:
            relocs = {
                k - offset: r for k, r in alloc.relocations.items()
                if offset <= k < offset + size
            }
        else:
            relocs = {}
        return bytes(alloc.data[offset : offset + size]), relocs

    def write_bytes(self, ptr: VPtr, data: bytes,
                    relocs: dict[int, Relocation], align: int, tid: int,
                    span: Span = DUMMY_SPAN) -> None:
        size = len(data)
        alloc = self._resolve(ptr, size, align, span, "write")
        offset = ptr.addr - alloc.base_addr
        if not ptr.mutable and ptr.is_ref:
            raise UbSignal(MiriError(
                UbKind.BOTH_BORROW,
                "writing through a shared reference", span))
        try:
            alloc.borrows.write(ptr.tag, span)
        except BorrowError as err:
            raise UbSignal(err.error) from None
        try:
            self.races.on_write(tid, alloc.id, offset, size, span)
        except RaceError as err:
            raise UbSignal(err.error) from None
        if alloc.relocations:
            alloc.clear_relocations(offset, size)
        alloc.data[offset : offset + size] = data
        alloc.init[offset : offset + size] = b"\x01" * size
        if relocs:
            for rel_offset, reloc in relocs.items():
                alloc.relocations[offset + rel_offset] = reloc

    # ------------------------------------------------------------------
    # Value encoding / decoding

    def encode(self, value: Value, target_ty: ty.Ty, span: Span = DUMMY_SPAN,
               ) -> tuple[bytes, dict[int, Relocation]]:
        """Serialise a transient value as (bytes, relocations)."""
        if isinstance(value, VInt):
            int_ty = target_ty if isinstance(target_ty, ty.TyInt) else value.ty
            size = ty.size_of(int_ty, self.structs)
            wrapped = int_ty.wrap(value.value)
            return wrapped.to_bytes(size, "little", signed=wrapped < 0), {}
        if isinstance(value, VBool):
            return (b"\x01" if value.value else b"\x00"), {}
        if isinstance(value, VChar):
            return ord(value.value).to_bytes(4, "little"), {}
        if isinstance(value, VUnit):
            return b"", {}
        if isinstance(value, VPtr):
            data = value.addr.to_bytes(8, "little")
            relocs: dict[int, Relocation] = {}
            if value.alloc_id is not None:
                relocs[0] = Relocation(value.alloc_id, value.tag,
                                       meta_len=value.meta_len)
            if value.meta_len is not None:
                data += value.meta_len.to_bytes(8, "little")
            return data, relocs
        if isinstance(value, VFnPtr):
            return value.addr.to_bytes(8, "little"), {
                0: Relocation(None, None, fn_name=value.fn_name)
            }
        if isinstance(value, VAggregate):
            return self._encode_aggregate(value, target_ty, span)
        if isinstance(value, VOption):
            return self._encode_option(value, span)
        if isinstance(value, VStr):
            return self._encode_str(value, span)
        if isinstance(value, VThreadHandle):
            return value.thread_id.to_bytes(8, "little"), {}
        if isinstance(value, VMutexRef):
            # Pad to the *declared* Mutex layout (the inner type inferred
            # from the construction value may be narrower).
            if isinstance(target_ty, ty.TyPath) and target_ty.name == "Mutex":
                total = ty.size_of(target_ty, self.structs)
            else:
                total = ty.size_of(
                    ty.TyPath("Mutex", (value.inner_ty,)), self.structs)
            return value.mutex_id.to_bytes(8, "little") + b"\x00" * max(
                0, total - 8), {}
        if isinstance(value, VMutexGuard):
            data, relocs = self.encode(value.data_ptr,
                                       ty.TyRawPtr(value.data_ptr.pointee, True), span)
            return data + value.mutex_id.to_bytes(8, "little"), relocs
        if isinstance(value, VLayout):
            return (value.size.to_bytes(8, "little")
                    + value.align.to_bytes(8, "little")), {}
        raise UbSignal(MiriError(
            UbKind.UNSUPPORTED,
            f"cannot store a {type(value).__name__} value in memory", span))

    def _encode_str(self, value: VStr, span: Span,
                    ) -> tuple[bytes, dict[int, Relocation]]:
        """String literals become fat pointers to interned CONST_STR allocs."""
        alloc_id = self._str_cache.get(value.value)
        if alloc_id is None or alloc_id not in self.allocations:
            raw = value.value.encode("utf-8")
            alloc = self.allocate(max(len(raw), 1), 1, AllocKind.CONST_STR,
                                  f"string {value.value[:16]!r}")
            alloc.data[: len(raw)] = raw
            for i in range(len(raw)):
                alloc.init[i] = 1
            self._str_cache[value.value] = alloc.id
            alloc_id = alloc.id
        alloc = self.allocations[alloc_id]
        raw_len = len(value.value.encode("utf-8"))
        data = alloc.base_addr.to_bytes(8, "little") + raw_len.to_bytes(8, "little")
        return data, {0: Relocation(alloc.id, alloc.base_tag, meta_len=raw_len)}

    def _encode_aggregate(self, value: VAggregate, target_ty: ty.Ty,
                          span: Span) -> tuple[bytes, dict[int, Relocation]]:
        # Prefer the declared target type: it may refine inference holes in
        # the value's type (e.g. `let v: Vec<i32> = Vec::new()`).
        agg_ty = value.ty
        if isinstance(target_ty, (ty.TyTuple, ty.TyArray, ty.TyPath)):
            try:
                if len(self._aggregate_field_types(target_ty)) == len(value.elems):
                    agg_ty = target_ty
            except ty.LayoutError:
                pass
        elem_types = self._aggregate_field_types(agg_ty)
        offsets = self._aggregate_offsets(agg_ty, elem_types)
        size = ty.size_of(agg_ty, self.structs)
        buffer = bytearray(size)
        init_mask = bytearray(size)
        relocs: dict[int, Relocation] = {}
        for elem, elem_ty, offset in zip(value.elems, elem_types, offsets):
            data, sub_relocs = self.encode(elem, elem_ty, span)
            buffer[offset : offset + len(data)] = data
            for i in range(len(data)):
                init_mask[offset + i] = 1
            for rel_offset, reloc in sub_relocs.items():
                relocs[offset + rel_offset] = reloc
        # Padding bytes stay zero; treat the whole aggregate as initialised.
        return bytes(buffer), relocs

    def _encode_option(self, value: VOption, span: Span,
                       ) -> tuple[bytes, dict[int, Relocation]]:
        if _is_niche_ty(value.inner_ty):
            if value.is_some:
                return self.encode(value.inner, value.inner_ty, span)
            return b"\x00" * 8, {}
        payload_size = ty.size_of(value.inner_ty, self.structs)
        _, _, offsets = ty._aggregate_layout([ty.BOOL, value.inner_ty], self.structs)
        total = ty.size_of(ty.TyTuple((ty.BOOL, value.inner_ty)), self.structs)
        buffer = bytearray(total)
        relocs: dict[int, Relocation] = {}
        if value.is_some:
            buffer[offsets[0]] = 1
            data, sub = self.encode(value.inner, value.inner_ty, span)
            buffer[offsets[1] : offsets[1] + payload_size] = data
            relocs = {offsets[1] + k: r for k, r in sub.items()}
        return bytes(buffer), relocs

    def decode(self, data: bytes, relocs: dict[int, Relocation],
               target_ty: ty.Ty, span: Span = DUMMY_SPAN) -> Value:
        """Reconstruct a transient value from raw bytes + relocations."""
        if isinstance(target_ty, ty.TyInt):
            value = int.from_bytes(data, "little", signed=target_ty.signed)
            return VInt(value, target_ty)
        if isinstance(target_ty, ty.TyBool):
            if data[0] not in (0, 1):
                raise UbSignal(MiriError(
                    UbKind.VALIDITY,
                    f"constructing invalid value: encountered {data[0]:#04x}, "
                    f"but expected a boolean",
                    span,
                ))
            return VBool(data[0] == 1)
        if isinstance(target_ty, ty.TyChar):
            code = int.from_bytes(data[:4], "little")
            if code > 0x10FFFF or 0xD800 <= code <= 0xDFFF:
                raise UbSignal(MiriError(
                    UbKind.VALIDITY,
                    f"constructing invalid value: encountered {code:#x}, but "
                    f"expected a valid unicode scalar value",
                    span,
                ))
            return VChar(chr(code))
        if isinstance(target_ty, ty.TyUnit):
            return VUnit()
        if isinstance(target_ty, (ty.TyRef, ty.TyRawPtr)):
            return self._decode_pointer(data, relocs, target_ty, span)
        if isinstance(target_ty, ty.TyFn):
            reloc = relocs.get(0)
            addr = int.from_bytes(data[:8], "little")
            if reloc is not None and reloc.fn_name is not None:
                return VFnPtr(reloc.fn_name, addr, target_ty)
            fn_name = self.fns_by_addr.get(addr)
            if fn_name is not None:
                return VFnPtr(fn_name, addr, target_ty)
            raise UbSignal(MiriError(
                UbKind.FUNC_POINTER,
                f"constructing invalid value: encountered {addr:#x}, but "
                f"expected a function pointer",
                span,
            ))
        if isinstance(target_ty, (ty.TyTuple, ty.TyArray)):
            return self._decode_aggregate(data, relocs, target_ty, span)
        if isinstance(target_ty, ty.TyPath):
            return self._decode_path(data, relocs, target_ty, span)
        raise UbSignal(MiriError(
            UbKind.UNSUPPORTED, f"cannot decode type {target_ty}", span))

    def _decode_pointer(self, data: bytes, relocs: dict[int, Relocation],
                        target_ty: ty.Ty, span: Span) -> Value:
        addr = int.from_bytes(data[:8], "little")
        reloc = relocs.get(0)
        meta_len = None
        if isinstance(target_ty.target, (ty.TySlice, ty.TyStr)) and len(data) >= 16:
            meta_len = int.from_bytes(data[8:16], "little")
        if reloc is not None and reloc.fn_name is None:
            if meta_len is None:
                meta_len = reloc.meta_len
            return VPtr(reloc.alloc_id, addr, reloc.tag, target_ty.target,
                        mutable=target_ty.mutable,
                        is_ref=isinstance(target_ty, ty.TyRef),
                        meta_len=meta_len)
        if isinstance(target_ty, ty.TyRef):
            if addr == 0:
                raise UbSignal(MiriError(
                    UbKind.VALIDITY,
                    "constructing invalid value: encountered a null reference",
                    span,
                ))
            raise UbSignal(MiriError(
                UbKind.VALIDITY,
                f"constructing invalid value: encountered a dangling "
                f"reference (0x{addr:x} has no provenance)",
                span,
            ))
        return VPtr(None, addr, None, target_ty.target,
                    mutable=target_ty.mutable, is_ref=False, meta_len=meta_len)

    def _decode_aggregate(self, data: bytes, relocs: dict[int, Relocation],
                          target_ty: ty.Ty, span: Span) -> Value:
        elem_types = self._aggregate_field_types(target_ty)
        offsets = self._aggregate_offsets(target_ty, elem_types)
        elems = []
        for elem_ty, offset in zip(elem_types, offsets):
            size = ty.size_of(elem_ty, self.structs)
            sub_relocs = {
                k - offset: r for k, r in relocs.items()
                if offset <= k < offset + size
            }
            elems.append(self.decode(
                data[offset : offset + size], sub_relocs, elem_ty, span))
        return VAggregate(target_ty, tuple(elems))

    def _decode_path(self, data: bytes, relocs: dict[int, Relocation],
                     target_ty: ty.TyPath, span: Span) -> Value:
        if target_ty.name in ("MaybeUninit", "ManuallyDrop"):
            return self.decode(data, relocs, target_ty.args[0], span)
        if target_ty.name == "Option" and _is_niche_ty(target_ty.args[0]):
            addr = int.from_bytes(data[:8], "little")
            if addr == 0:
                return VOption(None, target_ty.args[0])
            inner = self.decode(data, relocs, target_ty.args[0], span)
            return VOption(inner, target_ty.args[0])
        if target_ty.name in self.structs:
            return self._decode_aggregate(data, relocs, target_ty, span)
        if target_ty.name in ("Vec", "String"):
            # (ptr, cap, len) triple, re-tagged with the Vec type so the
            # decoded value stays a Vec (method dispatch depends on it).
            parts_ty = ty.TyTuple((
                ty.TyRawPtr(target_ty.args[0] if target_ty.args else ty.U8, True),
                ty.USIZE, ty.USIZE,
            ))
            parts = self._decode_aggregate(data, relocs, parts_ty, span)
            return VAggregate(target_ty, parts.elems)
        if target_ty.name == "Box":
            ptr_ty = ty.TyRawPtr(target_ty.args[0], True)
            inner = self.decode(data, relocs, ptr_ty, span)
            if isinstance(inner, VPtr):
                import dataclasses
                return dataclasses.replace(inner, is_box=True)
            return inner
        if target_ty.name == "JoinHandle":
            return VThreadHandle(int.from_bytes(data[:8], "little"))
        if target_ty.name == "Mutex":
            inner_ty = target_ty.args[0] if target_ty.args else ty.UNIT
            return VMutexRef(int.from_bytes(data[:8], "little"), inner_ty)
        if target_ty.name == "MutexGuard":
            inner_ty = target_ty.args[0] if target_ty.args else ty.UNIT
            data_ptr = self.decode(data[:8], relocs,
                                   ty.TyRawPtr(inner_ty, True), span)
            return VMutexGuard(int.from_bytes(data[8:16], "little"), data_ptr)
        if target_ty.name == "Layout":
            return VLayout(int.from_bytes(data[:8], "little"),
                           int.from_bytes(data[8:16], "little"))
        raise UbSignal(MiriError(
            UbKind.UNSUPPORTED, f"cannot decode type {target_ty}", span))

    # ------------------------------------------------------------------
    # Aggregate layout helpers

    def _aggregate_field_types(self, aggregate_ty: ty.Ty) -> list[ty.Ty]:
        if isinstance(aggregate_ty, ty.TyTuple):
            return list(aggregate_ty.elems)
        if isinstance(aggregate_ty, ty.TyArray):
            return [aggregate_ty.elem] * aggregate_ty.length
        if isinstance(aggregate_ty, ty.TyPath):
            if aggregate_ty.name in self.structs:
                return list(self.structs[aggregate_ty.name].field_types)
            if aggregate_ty.name in ("Vec", "String"):
                elem = aggregate_ty.args[0] if aggregate_ty.args else ty.U8
                return [ty.TyRawPtr(elem, True), ty.USIZE, ty.USIZE]
            if aggregate_ty.name in ("MaybeUninit", "ManuallyDrop"):
                return [aggregate_ty.args[0]]
        raise ty.LayoutError(f"not an aggregate: {aggregate_ty}")

    def _aggregate_offsets(self, aggregate_ty: ty.Ty,
                           elem_types: list[ty.Ty]) -> list[int]:
        if isinstance(aggregate_ty, ty.TyPath) and aggregate_ty.name in self.structs:
            layout = self.structs[aggregate_ty.name]
            if layout.is_union:
                return [0] * len(elem_types)
            return list(layout.field_offsets)
        if isinstance(aggregate_ty, ty.TyArray):
            elem_size = ty.size_of(aggregate_ty.elem, self.structs)
            return [i * elem_size for i in range(aggregate_ty.length)]
        if isinstance(aggregate_ty, ty.TyPath) and \
                aggregate_ty.name in ("Vec", "String"):
            return [0, 8, 16]
        _, _, offsets = ty._aggregate_layout(elem_types, self.structs)
        return offsets


def _is_niche_ty(inner: ty.Ty) -> bool:
    return isinstance(inner, (ty.TyRef, ty.TyRawPtr, ty.TyFn)) or (
        isinstance(inner, ty.TyPath) and inner.name == "Box"
    )
