"""Stack VM executing the bytecode from :mod:`repro.miri.bytecode`.

:class:`VM` subclasses :class:`~repro.miri.interp.Interpreter` and
overrides exactly three hooks — function bodies, closure bodies, and
const/static initializers — replacing the recursive tree walk with a
flat dispatch loop over compiled instructions.  Everything with
semantics (memory accesses, stacked borrows, race detection, unsafe
rules, shims, method tables, output formatting) is the inherited
interpreter implementation, so the two engines cannot drift on a rule:
they can only drift on *when* an operation happens, and the differential
suite pins that to byte-identical reports (including the ``steps``
fuel metric).

Control flow uses the interpreter's own ``_Break``/``_Continue``/
``_Return`` exceptions; the VM catches the first two via each code
object's static exception table (which also hosts the collect-mode
statement recovery) and lets ``_Return`` propagate to the shared
``_call_user_fn``/``_run_closure_body`` frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import types as ty
from .bytecode import (
    K_BREAK,
    K_BREAK_VALUE,
    K_COLLECT,
    K_CONTINUE,
    OP_AUTODEREF,
    OP_BINOP,
    OP_BOOL_CIRCUIT,
    OP_BOOL_TAIL,
    OP_BURN,
    OP_CALL_PATH,
    OP_CALL_SHIM,
    OP_CALL_SOME,
    OP_CALL_VALUE,
    OP_CAST,
    OP_CHECK_STRUCT,
    OP_COMPOUND,
    OP_DECLARE,
    OP_DEREF_PLACE,
    OP_DUP,
    OP_END_FOR,
    OP_EVAL_B,
    OP_FIELD_PLACE,
    OP_FOR_NEXT,
    OP_FOR_SETUP,
    OP_IF_FALSE,
    OP_INDEX_PLACE,
    OP_JUMP,
    OP_LET_BIND,
    OP_MAKE_ARRAY,
    OP_MAKE_CLOSURE_B,
    OP_MAKE_RANGE,
    OP_MAKE_REPEAT,
    OP_MAKE_STRUCT,
    OP_MAKE_TUPLE,
    OP_METHOD_PLACE,
    OP_METHOD_VALUE,
    OP_PLACE_NAME_B,
    OP_POP,
    OP_POP_SCOPE,
    OP_PUSH,
    OP_PUSH_B,
    OP_PUSH_SCOPE,
    OP_RAISE_BREAK,
    OP_RAISE_COMPILE,
    OP_RAISE_CONTINUE,
    OP_RAISE_RETURN,
    OP_RAISE_UNSUPPORTED,
    OP_READ,
    OP_REF,
    OP_STORE,
    OP_TEMP_PLACE,
    OP_UNOP,
    Code,
    CompiledProgram,
)
from .errors import CompileError, InterpUnsupported, MiriReport, UbSignal
from .interp import (
    DEFAULT_FUEL,
    Env,
    FuelExhausted,
    Interpreter,
    VClosure,
    _Break,
    _Continue,
    _Return,
)
from .values import UNIT_VALUE, VBool, VInt, VOption, VRangeIter


class VM(Interpreter):
    """Bytecode-executing interpreter; byte-identical to the tree walk."""

    def __init__(self, compiled: CompiledProgram, *,
                 fuel: int = DEFAULT_FUEL, collect: bool = False,
                 max_errors: int = 8, debug: bool = False):
        super().__init__(compiled.program, fuel=fuel, collect=collect,
                         max_errors=max_errors, debug=debug)
        self.compiled = compiled
        self._fn_codes = compiled.fn_codes
        self._closure_codes = compiled.closure_codes
        self._init_codes = compiled.init_codes

    # -- execution hooks ---------------------------------------------------

    def _eval_fn_body(self, fn, env, tid):
        code = self._fn_codes.get(fn.node_id)
        if code is None:  # compiled against a different tree: stay correct
            return super()._eval_fn_body(fn, env, tid)
        return self._run_code(code, env, tid)

    def _eval_closure_body(self, closure, env, tid):
        code = self._closure_codes.get(closure.body.node_id)
        if code is None:
            return super()._eval_closure_body(closure, env, tid)
        return self._run_code(code, env, tid)

    def _eval_item_init(self, item):
        code = self._init_codes.get(item.node_id)
        if code is None:
            return super()._eval_item_init(item)
        return self._run_code(code, self.globals, 0)

    # -- dispatch loop -----------------------------------------------------

    @staticmethod
    def _find_handler(handlers, ip, kinds):
        """Innermost table entry of one of ``kinds`` covering ``ip``."""
        best = None
        for handler in handlers:
            if handler.start <= ip < handler.end and handler.kind in kinds:
                if (best is None or handler.start > best.start
                        or (handler.start == best.start
                            and handler.end < best.end)):
                    best = handler
        return best

    def _run_code(self, code: Code, env: Env, tid: int):
        instrs = code.instrs
        handlers = code.handlers
        count = len(instrs)
        stack: list = []
        push = stack.append
        pop = stack.pop
        base_unsafe = self.unsafe_depth
        scope_depth = 0
        report = self.report
        ip = 0
        while ip < count:
            op, arg, span = instrs[ip]
            try:
                if op == OP_BURN:
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                elif op == OP_PUSH_B:
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                    push(arg)
                elif op == OP_EVAL_B:
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                    handler, node = arg
                    push(handler(self, node, env, tid))
                elif op == OP_PLACE_NAME_B:
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                    push(self._place_for_name(arg[0], env, span, arg[1]))
                elif op == OP_READ:
                    push(self.read_place(pop(), tid, span))
                elif op == OP_PUSH:
                    push(arg)
                elif op == OP_BINOP:
                    right = pop()
                    left = pop()
                    push(self._binop(arg, left, right, span))
                elif op == OP_POP:
                    pop()
                elif op == OP_JUMP:
                    ip = arg
                    continue
                elif op == OP_IF_FALSE:
                    cond = pop()
                    if not isinstance(cond, VBool):
                        raise CompileError(arg[1], span)
                    if not cond.value:
                        ip = arg[0]
                        continue
                elif op == OP_PUSH_SCOPE:
                    env = Env(env)
                    scope_depth += 1
                    if arg:
                        self.unsafe_depth += 1
                elif op == OP_POP_SCOPE:
                    env = env.parent
                    scope_depth -= 1
                    if arg:
                        self.unsafe_depth -= 1
                elif op == OP_STORE:
                    place = pop()
                    value = pop()
                    self.write_place(place, value, tid, span)
                    push(UNIT_VALUE)
                elif op == OP_LET_BIND:
                    self._bind_let(arg, pop(), env, tid)
                elif op == OP_CALL_SHIM:
                    shim, unsafe_label, node, argc = arg
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    if unsafe_label is not None:
                        self.require_unsafe(unsafe_label, span)
                    push(shim(self, args, node.generic_args, tid, span))
                elif op == OP_CALL_PATH:
                    node, argc = arg
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    push(self._call_path(node, args, env, tid, span))
                elif op == OP_METHOD_PLACE:
                    node, argc = arg
                    place = pop()
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    place = self._autoderef_for_method(place, tid, span)
                    push(self._dispatch_method_on_place(place, node, args,
                                                        tid))
                elif op == OP_METHOD_VALUE:
                    node, argc = arg
                    value = pop()
                    if argc:
                        args = stack[-argc:]
                        del stack[-argc:]
                    else:
                        args = []
                    push(self._dispatch_method_on_value(value, node, args,
                                                        tid))
                elif op == OP_CALL_VALUE:
                    callee = pop()
                    if arg:
                        args = stack[-arg:]
                        del stack[-arg:]
                    else:
                        args = []
                    push(self.call_fn_value(callee, args, tid, span))
                elif op == OP_CALL_SOME:
                    if arg:
                        args = stack[-arg:]
                        del stack[-arg:]
                    else:
                        args = []
                    inner = args[0]
                    push(VOption(inner, self.type_of_value(inner)))
                elif op == OP_DEREF_PLACE:
                    push(self._deref_place(pop(), span, arg))
                elif op == OP_AUTODEREF:
                    push(self._autoderef(pop(), tid, span))
                elif op == OP_FIELD_PLACE:
                    push(self._field_place(pop(), arg, span))
                elif op == OP_INDEX_PLACE:
                    index = pop()
                    push(self._index_place(pop(), index, tid, span))
                elif op == OP_TEMP_PLACE:
                    push(self._temp_place(pop(), span, tid))
                elif op == OP_UNOP:
                    push(self._unary_value(arg, pop(), span))
                elif op == OP_BOOL_CIRCUIT:
                    left = pop()
                    if not isinstance(left, VBool):
                        raise CompileError("logical op needs bool operands",
                                           span)
                    if arg[1]:
                        if not left.value:
                            push(VBool(False))
                            ip = arg[0]
                            continue
                    elif left.value:
                        push(VBool(True))
                        ip = arg[0]
                        continue
                elif op == OP_BOOL_TAIL:
                    right = pop()
                    if not isinstance(right, VBool):
                        raise CompileError("logical op needs bool operands",
                                           span)
                    push(VBool(right.value))
                elif op == OP_COMPOUND:
                    operand = pop()
                    current = pop()
                    place = pop()
                    result = self._binop(arg, current, operand, span)
                    self.write_place(place, result, tid, span)
                    push(UNIT_VALUE)
                elif op == OP_DUP:
                    push(stack[-1])
                elif op == OP_REF:
                    push(self._ref_from_place(pop(), arg, span))
                elif op == OP_MAKE_TUPLE:
                    elems = tuple(stack[-arg:])
                    del stack[-arg:]
                    push(self._tuple_value(elems))
                elif op == OP_MAKE_ARRAY:
                    if arg:
                        elems = tuple(stack[-arg:])
                        del stack[-arg:]
                    else:
                        elems = ()
                    push(self._array_value(elems, span))
                elif op == OP_MAKE_REPEAT:
                    count_value = pop()
                    push(self._repeat_value(pop(), count_value))
                elif op == OP_CHECK_STRUCT:
                    if self.memory.structs.get(arg) is None:
                        raise CompileError(f"cannot find struct `{arg}`",
                                           span)
                elif op == OP_MAKE_STRUCT:
                    node, argc = arg
                    if argc:
                        values = stack[-argc:]
                        del stack[-argc:]
                    else:
                        values = []
                    provided = {}
                    for (field_name, _expr), value in zip(node.fields,
                                                          values):
                        provided[field_name] = value
                    push(self._struct_value(node.name, provided, span))
                elif op == OP_MAKE_RANGE:
                    hi = pop()
                    push(self._range_value(pop(), hi, arg, span))
                elif op == OP_MAKE_CLOSURE_B:
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                    push(VClosure(list(arg.params), arg.body, env,
                                  arg.is_move))
                elif op == OP_CAST:
                    push(self._cast_value(pop(), arg, span))
                elif op == OP_DECLARE:
                    self._alloc_local(arg.name, arg.ty, arg.mutable, env)
                elif op == OP_FOR_SETUP:
                    iterable = pop()
                    if not isinstance(iterable, VRangeIter):
                        raise InterpUnsupported(
                            "`for` loops support only range iterables", span)
                    hi = iterable.hi + 1 if iterable.inclusive \
                        else iterable.hi
                    env = Env(env)
                    scope_depth += 1
                    local = self._alloc_local(
                        arg, ty.USIZE if iterable.lo >= 0 else ty.I64,
                        False, env)
                    push([local, iterable.lo, hi])
                elif op == OP_FOR_NEXT:
                    state = stack[-1]
                    if state[1] >= state[2]:
                        ip = arg
                        continue
                    self.fuel -= 1
                    report.steps += 1
                    if self.fuel <= 0:
                        raise FuelExhausted()
                    local = state[0]
                    self.write_place(self._local_place(local),
                                     VInt(state[1], local.ty), tid, span)
                    state[1] += 1
                elif op == OP_END_FOR:
                    pop()
                    env = env.parent
                    scope_depth -= 1
                    push(UNIT_VALUE)
                elif op == OP_RAISE_RETURN:
                    raise _Return(pop())
                elif op == OP_RAISE_BREAK:
                    raise _Break(pop())
                elif op == OP_RAISE_CONTINUE:
                    raise _Continue()
                elif op == OP_RAISE_COMPILE:
                    raise CompileError(arg, span)
                elif op == OP_RAISE_UNSUPPORTED:
                    raise InterpUnsupported(arg, span)
                else:  # pragma: no cover - compiler/VM version skew
                    raise InterpUnsupported(f"unknown opcode {op}", span)
            except _Break as brk:
                entry = self._find_handler(handlers, ip,
                                           (K_BREAK, K_BREAK_VALUE))
                if entry is None:
                    raise
                del stack[entry.depth:]
                while scope_depth > entry.scope_depth:
                    env = env.parent
                    scope_depth -= 1
                self.unsafe_depth = base_unsafe + entry.unsafe_offset
                if entry.kind == K_BREAK_VALUE:
                    push(brk.value)
                ip = entry.target
                continue
            except _Continue:
                entry = self._find_handler(handlers, ip, (K_CONTINUE,))
                if entry is None:
                    raise
                del stack[entry.depth:]
                while scope_depth > entry.scope_depth:
                    env = env.parent
                    scope_depth -= 1
                self.unsafe_depth = base_unsafe + entry.unsafe_offset
                ip = entry.target
                continue
            except (UbSignal, CompileError) as signal:
                # Statement-level error collection, mirroring
                # ``Interpreter._exec_stmt``.
                if not self.collect:
                    raise
                if isinstance(signal, UbSignal) \
                        and not signal.error.kind.is_ub:
                    raise
                entry = self._find_handler(handlers, ip, (K_COLLECT,))
                if entry is None:
                    raise
                self._record_collected(signal.error)
                del stack[entry.depth:]
                while scope_depth > entry.scope_depth:
                    env = env.parent
                    scope_depth -= 1
                self.unsafe_depth = base_unsafe + entry.unsafe_offset
                ip = entry.target
                continue
            ip += 1
        return pop()


# ---------------------------------------------------------------------------
# Divergence triage


def report_signature(report: MiriReport) -> tuple:
    """Everything byte-identity compares on a :class:`MiriReport`."""
    return (tuple((error.kind, error.message, error.span)
                  for error in report.errors),
            report.stdout, report.steps)


@dataclass(frozen=True)
class Divergence:
    """One engine disagreement, with both outcomes for triage."""

    label: str
    tree_report: MiriReport
    vm_report: MiriReport

    def render(self) -> str:
        lines = [f"engine divergence on {self.label}:",
                 f"  tree: steps={self.tree_report.steps} "
                 f"stdout={self.tree_report.stdout!r}"]
        lines += [f"    {error.render()}"
                  for error in self.tree_report.errors] or ["    (clean)"]
        lines.append(f"  vm:   steps={self.vm_report.steps} "
                     f"stdout={self.vm_report.stdout!r}")
        lines += [f"    {error.render()}"
                  for error in self.vm_report.errors] or ["    (clean)"]
        return "\n".join(lines)


def check_divergence(source: str, label: str = "<source>", *,
                     fuel: int = DEFAULT_FUEL, collect: bool = False,
                     max_errors: int = 8) -> Divergence | None:
    """Run ``source`` under both engines; a :class:`Divergence` (or None).

    The triage tool behind the ``vm_matches_tree`` benchmark gate and the
    ``repro repair --engine-exec`` escape hatch: when a VM report ever
    disagrees with the tree-walker, this reproduces the pair in-process.
    """
    from . import _detect
    tree = _detect(source, collect=collect, max_errors=max_errors,
                   fuel=fuel, engine="tree")
    vm = _detect(source, collect=collect, max_errors=max_errors,
                 fuel=fuel, engine="vm")
    if report_signature(tree) == report_signature(vm):
        return None
    return Divergence(label, tree, vm)
