"""Runtime values for the abstract interpreter.

Values are *transient*: they exist while an expression is being evaluated.
As soon as a value is stored into a variable or written through a pointer it
is byte-encoded into an :class:`~repro.miri.memory.Allocation`, preserving
pointer provenance through relocation entries exactly like Miri does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import types as ty


@dataclass(frozen=True)
class Value:
    pass


@dataclass(frozen=True)
class VInt(Value):
    value: int
    ty: ty.TyInt

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VBool(Value):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class VChar(Value):
    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class VUnit(Value):
    def __str__(self) -> str:
        return "()"


UNIT_VALUE = VUnit()


@dataclass(frozen=True)
class VPtr(Value):
    """A pointer or reference.

    ``alloc_id is None`` means the pointer was forged from an integer and has
    *no provenance*; dereferencing it is UB under strict provenance. ``tag``
    identifies the stacked-borrows item this pointer uses for accesses.
    """

    alloc_id: int | None
    addr: int
    tag: int | None
    pointee: ty.Ty
    mutable: bool = False
    is_ref: bool = False
    #: True for the owning pointer inside a Box.
    is_box: bool = False
    #: Element count for fat pointers (&[T] / &str); None for thin pointers.
    meta_len: int | None = None

    @property
    def has_provenance(self) -> bool:
        return self.alloc_id is not None and self.tag is not None

    @property
    def is_null(self) -> bool:
        return self.addr == 0

    def with_pointee(self, pointee: ty.Ty, mutable: bool | None = None) -> "VPtr":
        return VPtr(self.alloc_id, self.addr, self.tag, pointee,
                    self.mutable if mutable is None else mutable,
                    is_ref=False, meta_len=self.meta_len)

    def __str__(self) -> str:
        return f"0x{self.addr:x}"


@dataclass(frozen=True)
class VFnPtr(Value):
    fn_name: str
    addr: int
    sig: ty.TyFn | None = None

    def __str__(self) -> str:
        return f"<fn {self.fn_name}>"


@dataclass(frozen=True)
class VStr(Value):
    """A string literal value (only observable via println!/format!)."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class VAggregate(Value):
    """Transient tuple/array/struct value prior to being stored."""

    ty: ty.Ty
    elems: tuple[Value, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elems)
        if isinstance(self.ty, ty.TyArray):
            return f"[{inner}]"
        return f"({inner})"


@dataclass(frozen=True)
class VOption(Value):
    """Transient Option value; encodable only for pointer payloads (niche)."""

    inner: Value | None
    inner_ty: ty.Ty

    @property
    def is_some(self) -> bool:
        return self.inner is not None

    def __str__(self) -> str:
        return f"Some({self.inner})" if self.is_some else "None"


@dataclass(frozen=True)
class VThreadHandle(Value):
    """JoinHandle: references the already-executed thread record."""

    thread_id: int

    def __str__(self) -> str:
        return f"JoinHandle({self.thread_id})"


@dataclass(frozen=True)
class VMutexGuard(Value):
    """MutexGuard: grants access to the data allocation of a Mutex."""

    mutex_id: int
    data_ptr: VPtr

    def __str__(self) -> str:
        return f"MutexGuard({self.mutex_id})"


@dataclass(frozen=True)
class VMutexRef(Value):
    """The Mutex object itself (refers into the interpreter's mutex table)."""

    mutex_id: int
    inner_ty: ty.Ty

    def __str__(self) -> str:
        return f"Mutex({self.mutex_id})"


@dataclass(frozen=True)
class VLayout(Value):
    """std::alloc::Layout — carried around by value."""

    size: int
    align: int

    def __str__(self) -> str:
        return f"Layout(size={self.size}, align={self.align})"


@dataclass(frozen=True)
class VRangeIter(Value):
    lo: int
    hi: int
    inclusive: bool = False


@dataclass(frozen=True)
class VUninit(Value):
    """The value of ``MaybeUninit::uninit()``: storing it marks bytes uninit."""

    ty: ty.Ty

    def __str__(self) -> str:
        return "<uninit>"


def format_value(value: Value) -> str:
    """Best-effort Display formatting for println!."""
    return str(value)
