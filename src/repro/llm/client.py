"""Chat-style client for the simulated models, with cost/latency accounting.

The client is the single funnel through which every "LLM call" in the system
flows: it renders the prompt, counts tokens, advances a *virtual clock* by
the profile's latency model, and hands a per-call seeded RNG to the oracle.
Determinism: the RNG for call *i* is seeded from (global seed, model name,
temperature, i), so an experiment is exactly reproducible.

Being the single funnel also makes this the natural choke point for
transient-failure handling: when a fault plan is active (see
:mod:`repro.engine.faults`), every call may raise an injected
``TransientLLMError``/``TransientLLMTimeout`` *before any accounting* —
no clock advance, no stats entry, no call-index bump — and is retried
with deterministic backoff.  Because the call index only moves on
success, a retried call replays the exact RNG stream the fault-free run
would have used, so recovered outcomes stay byte-identical.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from .profiles import ModelProfile, get_profile
from .tokenizer import DEFAULT_CONTEXT_LIMIT, count_tokens, exceeds_context

_resilience_modules = None


def _resilience():
    """Lazily import the fault/retry plane.

    ``repro.engine`` transitively imports ``repro.llm`` (the ensemble
    pulls in model profiles), so a top-level import here would complete
    the cycle back onto a partially-initialized module.  Importing on
    first call breaks it, and caches the modules so the steady-state cost
    is one global read per LLM call.
    """
    global _resilience_modules
    if _resilience_modules is None:
        from ..engine import faults, retry
        _resilience_modules = (faults, retry)
    return _resilience_modules


class ContextOverflow(Exception):
    """Prompt exceeds the model's context limit (§II-A scope rule)."""


class VirtualClock:
    """Accumulates simulated wall-clock seconds (LLM latency, tool runs)."""

    def __init__(self):
        self.elapsed = 0.0

    def advance(self, seconds: float) -> None:
        self.elapsed += max(0.0, seconds)


@dataclass
class LLMCall:
    task: str
    prompt_tokens: int
    completion_tokens: int
    latency: float


@dataclass
class LLMStats:
    calls: list[LLMCall] = field(default_factory=list)

    @property
    def call_count(self) -> int:
        return len(self.calls)

    @property
    def total_tokens(self) -> int:
        return sum(c.prompt_tokens + c.completion_tokens for c in self.calls)

    @property
    def total_latency(self) -> float:
        return sum(c.latency for c in self.calls)


class LLMClient:
    """One conversation endpoint bound to a model profile and temperature."""

    def __init__(self, model: str | ModelProfile = "gpt-4",
                 temperature: float = 0.5, seed: int = 0,
                 clock: VirtualClock | None = None,
                 context_limit: int = DEFAULT_CONTEXT_LIMIT,
                 retry=None):
        self.profile = model if isinstance(model, ModelProfile) \
            else get_profile(model)
        self.temperature = temperature
        self.seed = seed
        self.clock = clock if clock is not None else VirtualClock()
        self.context_limit = context_limit
        #: Policy for injected transient failures; ``None`` means the
        #: stock :data:`repro.engine.retry.LLM_RETRY`.
        self.retry = retry
        self.stats = LLMStats()
        self._call_index = 0

    # ------------------------------------------------------------------

    def rng_for_call(self, task: str, sample: int = 0) -> random.Random:
        """Deterministic per-call RNG: (seed, model, temperature, index).

        ``sample`` distinguishes the completions of one *batched* call;
        sample 0 deliberately shares the key of a plain :meth:`charge` so
        routing an existing single-stream caller through
        :meth:`generate_batch` leaves its outcomes bit-identical.
        """
        suffix = f"#b{sample}" if sample else ""
        key = (f"{self.seed}|{self.profile.name}|{self.temperature:.3f}"
               f"|{self._call_index}|{task}{suffix}")
        digest = hashlib.sha256(key.encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _check_context(self, prompt: str) -> int:
        if exceeds_context(prompt, self.context_limit):
            raise ContextOverflow(
                f"prompt of {count_tokens(prompt)} tokens exceeds the "
                f"{self.context_limit}-token context limit")
        return count_tokens(prompt)

    def _fault_key(self, task: str) -> str:
        """Injection identity of the *next* call: stable across retries
        (the index only advances on success), unique across calls."""
        return (f"{self.profile.name}|{self.seed}|{self.temperature:.3f}"
                f"|{self._call_index}|{task}")

    def _resilient(self, task: str, operation):
        """Run one accounting operation under the active fault plan.

        Fault-free fast path: no plan active means a single direct call —
        zero retry machinery on the hot path.  With a plan, the injection
        probe fires *before* ``operation`` touches any state, so a failed
        attempt leaves the client untouched and the retry replays the
        identical RNG/clock/stats transition the fault-free run performs.
        """
        faults, retry = _resilience()
        plan = faults.active_plan()
        if not plan.enabled:
            return operation()
        key = self._fault_key(task)

        def attempt_once(attempt: int):
            faults.maybe_inject("llm", key=key, attempt=attempt, plan=plan)
            return operation()

        policy = self.retry if self.retry is not None else retry.LLM_RETRY
        return policy.run(attempt_once, site="llm", key=key,
                          retryable=faults.TransientLLMError)

    def charge(self, task: str, prompt: str,
               completion_tokens: int = 256) -> random.Random:
        """Account for one model invocation and return its RNG.

        Raises :class:`ContextOverflow` for prompts beyond the context limit
        — callers treat the affected program as out of scope, exactly as the
        paper's scope section prescribes.  Injected transient failures (an
        active fault plan's ``llm`` site) are retried with deterministic
        backoff and never perturb the returned RNG stream.
        """
        return self._resilient(
            task, lambda: self._charge_once(task, prompt, completion_tokens))

    def _charge_once(self, task: str, prompt: str,
                     completion_tokens: int) -> random.Random:
        prompt_tokens = self._check_context(prompt)
        latency = (self.profile.latency_base
                   + self.profile.latency_per_ktoken
                   * (prompt_tokens + completion_tokens) / 1000.0)
        self.clock.advance(latency)
        rng = self.rng_for_call(task)
        self.stats.calls.append(LLMCall(task, prompt_tokens,
                                        completion_tokens, latency))
        self._call_index += 1
        return rng

    def generate_batch(self, task: str, prompt: str, n: int,
                       completion_tokens: int = 256) -> list[random.Random]:
        """Sample ``n`` completions of one prompt in a single invocation.

        This is the batched-oracle path (RustAssistant-style candidate
        fan-out): the prompt is ingested **once** and the fixed per-request
        latency is paid **once**, so a batch of ``n`` costs
        ``base + per_ktoken * (prompt + n * completion)`` virtual seconds
        instead of ``n`` full round-trips.  Accounting records one
        :class:`LLMCall` whose completion size is the whole batch.

        Returns one independent deterministic RNG per sample.  Stream 0 is
        identical to what a plain :meth:`charge` at this call index would
        return, which is what lets the repair loop's existing candidate
        generation route through here without perturbing any experiment.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        return self._resilient(
            task,
            lambda: self._generate_batch_once(task, prompt, n,
                                              completion_tokens))

    def _generate_batch_once(self, task: str, prompt: str, n: int,
                             completion_tokens: int) -> list[random.Random]:
        prompt_tokens = self._check_context(prompt)
        latency = (self.profile.latency_base
                   + self.profile.latency_per_ktoken
                   * (prompt_tokens + n * completion_tokens) / 1000.0)
        self.clock.advance(latency)
        rngs = [self.rng_for_call(task, sample) for sample in range(n)]
        self.stats.calls.append(LLMCall(task, prompt_tokens,
                                        n * completion_tokens, latency))
        self._call_index += 1
        return rngs

    def fork(self, seed_offset: int = 1) -> "LLMClient":
        """A client with the same profile/clock but an independent RNG stream."""
        return LLMClient(self.profile, self.temperature,
                         self.seed + seed_offset, self.clock,
                         self.context_limit, retry=self.retry)
