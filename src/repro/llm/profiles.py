"""Capability profiles for the simulated language models.

These are the **only tuned quantities** in the reproduction (see the
"calibration contract" in DESIGN.md). A profile parameterises how often the
stochastic oracle succeeds at each sub-task: classifying the error, ranking a
genuinely-viable repair first, preserving semantics, and avoiding corrupting
hallucinations — plus a latency model for the virtual clock.

The numbers are calibrated so that the *standalone-model* repair rates land
in the bands Fig. 8/9 report (GPT-4 alone ≈ 55-65% pass, GPT-3.5 clearly
weaker, Claude-3.5 close to GPT-4, GPT-O1 best at reasoning but weak on rare
error shapes). Everything downstream of these probabilities is mechanistic.

Every profile in :data:`PROFILES` also auto-registers a standalone engine
arm under its own name (see :mod:`repro.engine.ensemble`), which is how
ensemble member lists and ``repro campaign --engine gpt-4`` address models
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..miri.errors import UbKind


@dataclass(frozen=True)
class ModelProfile:
    name: str
    #: P(correctly classifying error category / fix class) at T=0.5.
    feature_accuracy: float
    #: Base P(a generated solution leads with a genuinely-viable rule).
    repair_skill: float
    #: P(an erroneous step is a corrupting hallucination, not a no-op).
    hallucination_rate: float
    #: P(picking a semantics-preserving fix when several fixes are viable).
    semantic_fidelity: float
    #: Multiplicative skill penalty per case-difficulty point above 1.
    difficulty_penalty: float
    #: Virtual-clock latency: seconds = base + per_ktoken * (tokens / 1000).
    latency_base: float
    latency_per_ktoken: float
    #: Per-category skill multipliers (captures "rare error" weaknesses).
    category_skill: dict[UbKind, float] = field(default_factory=dict)
    #: Skill multiplier when driven inside a multi-agent framework (tool-use
    #: / instruction-following quality — distinct from one-shot repair).
    orchestration: float = 1.0

    def skill_for(self, category: UbKind, difficulty: int) -> float:
        skill = self.repair_skill * self.category_skill.get(category, 1.0)
        skill *= max(0.25, 1.0 - self.difficulty_penalty * (difficulty - 1))
        return min(0.98, skill)


GPT_35 = ModelProfile(
    name="gpt-3.5",
    feature_accuracy=0.68,
    repair_skill=0.44,
    hallucination_rate=0.26,
    semantic_fidelity=0.52,
    difficulty_penalty=0.14,
    latency_base=1.2,
    latency_per_ktoken=4.0,
    orchestration=0.85,
)

GPT_4 = ModelProfile(
    name="gpt-4",
    feature_accuracy=0.88,
    repair_skill=0.63,
    hallucination_rate=0.12,
    semantic_fidelity=0.72,
    difficulty_penalty=0.09,
    latency_base=2.0,
    latency_per_ktoken=10.0,
)

CLAUDE_35 = ModelProfile(
    name="claude-3.5",
    feature_accuracy=0.85,
    repair_skill=0.61,
    hallucination_rate=0.13,
    semantic_fidelity=0.70,
    difficulty_penalty=0.11,
    latency_base=1.6,
    latency_per_ktoken=7.0,
    # Fig. 8/9: Claude+RustBrain lags GPT-4+RustBrain on deep-dependency
    # categories despite comparable standalone capability — modelled as a
    # weaker orchestration multiplier plus category-specific dips.
    category_skill={
        UbKind.STACK_BORROW: 0.85,
        UbKind.BOTH_BORROW: 0.85,
        UbKind.TAIL_CALL: 0.88,
    },
    orchestration=0.30,
)

GPT_O1 = ModelProfile(
    name="gpt-o1",
    feature_accuracy=0.92,
    repair_skill=0.68,
    hallucination_rate=0.07,
    semantic_fidelity=0.74,
    difficulty_penalty=0.06,
    latency_base=9.0,          # long deliberation chains
    latency_per_ktoken=22.0,
    # Fig. 10: exceptional reasoning, but fails to tailor fixes for uncommon
    # error shapes (panic, tail calls) from code features alone.
    category_skill={
        UbKind.PANIC: 0.22,
        UbKind.TAIL_CALL: 0.50,
        UbKind.FUNC_CALL: 0.80,
    },
)

PROFILES: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (GPT_35, GPT_4, CLAUDE_35, GPT_O1)
}


def get_profile(name: str) -> ModelProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown model {name!r}; available: {known}") from None
