"""Token accounting for prompts/completions.

A byte-pair-ish heuristic (≈ 4 chars / token with a word floor) — the exact
constant does not matter, only that longer prompts cost proportionally more
virtual latency and that the token-limit guard (§II-A: "we temporarily
disregard Rust code that exceeds LLM token limits") has something to measure.
"""

from __future__ import annotations

DEFAULT_CONTEXT_LIMIT = 16_384


def count_tokens(text: str) -> int:
    if not text:
        return 0
    by_chars = len(text) / 4.0
    by_words = len(text.split()) * 1.3
    return max(1, round(max(by_chars, by_words)))


def exceeds_context(text: str, limit: int = DEFAULT_CONTEXT_LIMIT) -> bool:
    return count_tokens(text) > limit
