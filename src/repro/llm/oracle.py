"""The stochastic repair oracle: what the simulated LLM "knows".

Three task engines back the framework's LLM calls:

* :func:`extract_features` — classify the failure and the fix class from the
  code + detector report (fast thinking F2). Noise: confusable categories
  are swapped with probability ``1 - feature_accuracy``.
* :func:`rank_candidate_rules` — order candidate repair rules for a
  (predicted) category. Skill decides whether the model's *prior* ordering
  (domain knowledge of how each UB class is fixed in Rust) survives, or the
  ranking degenerates into weighted noise. KB hints and feedback plans boost
  specific rules, exactly where §III-B3/§III-C hook in.
* :func:`corrupt_step` — when slow thinking executes a step, decide whether
  the model's edit is faithful, a wrong-but-plausible substitution, or a
  corrupting hallucination (the error-growth driver behind §III-B2).

The oracle never sees a case's ground-truth strategy list; repairs succeed
or fail because the chosen rewrite genuinely does (or does not) fix the
program under the detector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang import ast_nodes as ast
from ..lang.printer import print_program
from ..miri.errors import MiriReport, UbKind
from .client import LLMClient
from .sampling import (
    diversity_count,
    exploration_factor,
    fidelity_factor,
    hallucination_factor,
)

# ---------------------------------------------------------------------------
# Domain priors: how an LLM "knows" each UB class is usually repaired.
# Ordered roughly semantics-preserving-first; this is public Rust knowledge
# (mirrors §III-A's classification), not per-case ground truth.

CATEGORY_RULE_PRIORS: dict[UbKind, list[str]] = {
    UbKind.ALLOC: [
        "remove_second_free", "fix_dealloc_layout", "guard_layout_nonzero",
    ],
    UbKind.DANGLING_POINTER: [
        "move_drop_after_last_use", "take_pointer_after_mutation",
        "guard_nonnull_before_deref", "guard_ptr_add_with_len_check",
    ],
    UbKind.PANIC: [
        "saturating_arith_on_extreme", "guard_index_with_len_check",
        "guard_division_nonzero", "replace_unwrap_with_unwrap_or",
        "mask_shift_amount",
    ],
    UbKind.PROVENANCE: [
        "replace_deref_with_original_value", "read_owner_instead_of_raw",
        "replace_transmute_ref_with_cast",
    ],
    UbKind.UNINIT: [
        "replace_uninit_with_zero_init", "write_before_assume_init",
        "replace_set_len_with_resize", "read_written_union_field",
        "write_zero_after_alloc",
    ],
    UbKind.BOTH_BORROW: [
        "shorten_shared_borrow", "hoist_write_before_shared",
    ],
    UbKind.DATA_RACE: [
        "replace_static_mut_with_atomic", "join_thread_before_access",
        "protect_with_mutex",
    ],
    UbKind.FUNC_CALL: [
        "fix_call_arity", "call_with_actual_signature",
    ],
    UbKind.FUNC_POINTER: [
        "call_with_actual_signature", "replace_int_fn_transmute_with_fn",
        "replace_transmute_fn_with_direct",
    ],
    UbKind.STACK_BORROW: [
        "read_owner_instead_of_raw", "hoist_raw_use_before_reborrow",
        "take_pointer_after_mutation",
    ],
    UbKind.VALIDITY: [
        "replace_transmute_int_with_comparison", "replace_zeroed_ref_with_local",
        "replace_transmute_char_with_from_u32", "store_valid_bool",
    ],
    UbKind.UNALIGNED: [
        "read_unaligned_instead", "guard_alignment_before_cast_read",
    ],
    UbKind.CONCURRENCY: [
        "add_missing_join", "release_lock_before_relock",
    ],
    UbKind.TAIL_CALL: [
        "correct_tail_dispatch", "call_with_actual_signature",
    ],
}

#: Categories an imperfect classifier plausibly confuses.
CONFUSABLE: dict[UbKind, list[UbKind]] = {
    UbKind.ALLOC: [UbKind.DANGLING_POINTER],
    UbKind.DANGLING_POINTER: [UbKind.STACK_BORROW, UbKind.PROVENANCE],
    UbKind.STACK_BORROW: [UbKind.BOTH_BORROW, UbKind.DANGLING_POINTER],
    UbKind.BOTH_BORROW: [UbKind.STACK_BORROW],
    UbKind.PROVENANCE: [UbKind.DANGLING_POINTER],
    UbKind.UNINIT: [UbKind.VALIDITY],
    UbKind.VALIDITY: [UbKind.UNINIT],
    UbKind.UNALIGNED: [UbKind.VALIDITY],
    UbKind.DATA_RACE: [UbKind.CONCURRENCY],
    UbKind.CONCURRENCY: [UbKind.DATA_RACE],
    UbKind.FUNC_CALL: [UbKind.FUNC_POINTER],
    UbKind.FUNC_POINTER: [UbKind.FUNC_CALL, UbKind.TAIL_CALL],
    UbKind.TAIL_CALL: [UbKind.FUNC_POINTER],
    UbKind.PANIC: [UbKind.VALIDITY],
}

_FIX_KIND_BY_CATEGORY: dict[UbKind, str] = {
    UbKind.ALLOC: "modify",
    UbKind.DANGLING_POINTER: "modify",
    UbKind.PANIC: "assert",
    UbKind.PROVENANCE: "replace",
    UbKind.UNINIT: "replace",
    UbKind.BOTH_BORROW: "modify",
    UbKind.DATA_RACE: "replace",
    UbKind.FUNC_CALL: "modify",
    UbKind.FUNC_POINTER: "modify",
    UbKind.STACK_BORROW: "modify",
    UbKind.VALIDITY: "replace",
    UbKind.UNALIGNED: "modify",
    UbKind.CONCURRENCY: "modify",
    UbKind.TAIL_CALL: "modify",
}


@dataclass(frozen=True)
class ExtractedFeatures:
    """Fast-thinking feature extraction output (possibly mis-classified)."""

    predicted_category: UbKind
    true_category: UbKind
    fix_kind: str                      # "replace" | "assert" | "modify"
    unsafe_block_count: int
    unsafe_call_count: int
    error_message: str

    @property
    def correct(self) -> bool:
        return self.predicted_category is self.true_category


# ---------------------------------------------------------------------------
# Prompts (kept textual so token accounting measures something real)

FEATURE_PROMPT = """You are a Rust safety expert. Analyse this program and \
the Miri diagnostic. Identify: 1. A brief summary of the Miri error. \
2. The root cause of the UB, referencing specific lines in the code. \
Classify the unsafe operation into one of: dereference raw pointer, call \
unsafe function, access mutable static, access union field, unsafe trait.

### Code
{code}

### Miri diagnostic
{error}
"""

SOLUTION_PROMPT = """Based on the extracted features, propose {n} distinct \
repair solutions. For each, state which strategy it uses:
[Prompt1] Find a safe API with the same functionality for replacement.
[Prompt2] Pre-assertion added before UB is possible, to prevent it.
[Prompt3] If adding assertions and replacement cannot resolve logic issues, \
keep functionality and semantics while avoiding UB through modification.

### Error category
{category}

### Code
{code}
{hints}
"""


def extract_features(client: LLMClient, program: ast.Program,
                     report: MiriReport) -> ExtractedFeatures:
    """Fast-thinking F2: classify the error + code features, with noise."""
    code = print_program(program)
    error_text = report.render()
    rng = client.charge("feature_extraction",
                        FEATURE_PROMPT.format(code=code, error=error_text),
                        completion_tokens=200)
    true_category = _true_category(report)
    accuracy = min(0.98, client.profile.feature_accuracy
                   * (0.92 + 0.16 * exploration_factor(client.temperature)))
    predicted = true_category
    if rng.random() > accuracy:
        choices = CONFUSABLE.get(true_category, [])
        if choices:
            predicted = rng.choice(choices)
    unsafe_blocks = sum(
        1 for node in ast.walk(program)
        if isinstance(node, ast.Block) and node.is_unsafe)
    unsafe_calls = sum(
        1 for node in ast.walk(program)
        if isinstance(node, ast.MethodCall)
        and node.method in ("read", "write", "add", "offset", "set_len",
                            "assume_init", "get_unchecked"))
    return ExtractedFeatures(
        predicted_category=predicted,
        true_category=true_category,
        fix_kind=_FIX_KIND_BY_CATEGORY.get(predicted, "modify"),
        unsafe_block_count=unsafe_blocks,
        unsafe_call_count=unsafe_calls,
        error_message=report.errors[0].message if report.errors else "",
    )


def _true_category(report: MiriReport) -> UbKind:
    if not report.errors:
        return UbKind.PANIC
    kind = report.errors[0].kind
    if kind in CATEGORY_RULE_PRIORS:
        return kind
    return UbKind.VALIDITY


def rank_candidate_rules(client: LLMClient, features: ExtractedFeatures,
                         program: ast.Program, n_solutions: int,
                         kb_hint: list[str] | None = None,
                         feedback_rules: list[str] | None = None,
                         difficulty: int = 2, round_index: int = 0,
                         orchestrated: bool = False,
                         rng: random.Random | None = None) -> list[list[str]]:
    """Fast-thinking solution generation: ``n`` ranked repair plans.

    Returns a list of plans; each plan is an ordered list of rule names
    (primary fix first, fallbacks after). The caller (slow thinking)
    decomposes, executes and verifies them.

    The ``n`` candidates are sampled through
    :meth:`~repro.llm.client.LLMClient.generate_batch` — one batched
    invocation that ingests the prompt once — and the plan-builder consumes
    completion stream 0, which is identical to the stream a plain
    ``charge`` would have produced, so the batching is invisible to every
    seeded experiment.  Callers that already paid for a batch (see
    :func:`generate_plan_batch`) pass the per-sample ``rng`` explicitly and
    no new invocation is accounted.
    """
    if n_solutions < 1:
        # A zero-candidate round consults nobody and proposes nothing.
        return []
    code = print_program(program)
    hints = ""
    if kb_hint:
        hints += "\n### Knowledge-base exemplars suggest\n" + ", ".join(kb_hint)
    if feedback_rules:
        hints += "\n### Previously successful for similar errors\n" + \
            ", ".join(feedback_rules)
    if rng is None:
        rng = client.generate_batch(
            "solution_generation",
            SOLUTION_PROMPT.format(n=n_solutions, code=code,
                                   category=features.predicted_category.value,
                                   hints=hints),
            n_solutions,
            completion_tokens=120,
        )[0]
    profile = client.profile
    temperature = client.temperature

    # Adapting a retrieved exemplar to the local code is itself a skill:
    # orchestration-poor models fail to integrate the hint at all — and a
    # model that cannot integrate this exemplar will not succeed on retry,
    # so the trait is fixed per repair conversation.
    if kb_hint and orchestrated and not _adapts_exemplars(client):
        kb_hint = None

    prior = list(CATEGORY_RULE_PRIORS.get(features.predicted_category, []))

    # One *understanding* roll per generation round: a model that has
    # misread the problem stays misread across its own samples
    # (self-consistency); temperature lets individual samples defect.
    category_mult = profile.category_skill.get(features.true_category, 1.0)
    skill = profile.skill_for(features.true_category, difficulty) \
        * exploration_factor(temperature)
    if orchestrated:
        skill *= profile.orchestration
    if round_index > 0:
        # A model that failed a full round tends to repeat its mistake;
        # only *new information* (a KB exemplar, a recalled plan) breaks
        # the rut — exactly the paper's case for the reasoning agent.
        skill *= 0.45
    if kb_hint and category_mult < 1.0:
        # Tailoring a retrieved exemplar to an error shape the model does
        # not understand fails with the same category weakness (Fig. 10:
        # O1 "fails to provide suitable solutions based on code features"
        # for uncommon errors even with support).
        if rng.random() > category_mult:
            kb_hint = None
    if kb_hint and orchestrated:
        # The KB is reached through LLM-extracted ASTs (§III-B3): the
        # extraction is most reliable at moderate temperatures, so hint
        # availability follows the same inverted-U as everything else.
        if rng.random() > 0.99 * exploration_factor(temperature) ** 1.5:
            kb_hint = None
    if kb_hint:
        skill = min(0.97, skill + 0.25 * category_mult)
    if feedback_rules:
        skill = min(0.97, skill + 0.35 * category_mult)
    understands = rng.random() < skill
    # Sampling diversity lets individual solutions defect from the round's
    # base understanding. Defecting *toward* the correct repair is itself
    # skill-dependent; defecting away is pure sampling noise.
    flip_rate = 0.06 + 0.10 * temperature
    flip_to_correct = flip_rate * min(1.0, skill / 0.55) \
        * exploration_factor(temperature)

    # Fidelity: an unfaithful model favours blunt guards over the
    # semantics-preserving fix (passes Miri, may change behaviour).
    faithful = rng.random() < (profile.semantic_fidelity
                               * fidelity_factor(temperature))
    ordered_prior = list(prior)
    if not faithful and len(ordered_prior) > 1:
        from ..core.rewrites import FixKind, REGISTRY
        ordered_prior.sort(key=lambda name: (
            0 if (REGISTRY.get(name) is not None
                  and REGISTRY[name].kind is FixKind.ASSERT) else 1))

    other_rules = [
        rule
        for category, rules in sorted(CATEGORY_RULE_PRIORS.items(),
                                      key=lambda kv: kv[0].value)
        for rule in rules
        if category is not features.predicted_category
    ]

    plans: list[list[str]] = []
    distinct = diversity_count(temperature, n_solutions)
    for index in range(n_solutions):
        defect_rate = flip_rate if understands else flip_to_correct
        defects = rng.random() < defect_rate and index < distinct
        on_target = understands != defects
        if on_target and category_mult < 1.0 and \
                rng.random() > category_mult:
            # Even an on-target round produces unsuitable plans for error
            # shapes outside the model's competence.
            on_target = False
        pool: list[str]
        cap = 3
        if feedback_rules and index == 0:
            pool = list(feedback_rules) + ordered_prior[:1]
        elif on_target:
            # KB exemplars and the model's own prior reinforce each other:
            # rules both suggest lead the plan; the model's own prior keeps
            # precedence over *disagreeing* exemplars (they only append one
            # extra candidate, rescuing misclassified rounds).
            hint = list(kb_hint or [])
            agreement = [rule for rule in hint if rule in ordered_prior]
            disagreement = [rule for rule in hint if rule not in ordered_prior]
            pool = agreement + ordered_prior + disagreement[:1]
            cap = 4 if hint else 3
        else:
            # Off-target: free association over the wrong toolboxes, with a
            # small chance one prior rule sneaks in. Retrieval is mechanical,
            # so KB exemplars still reach a model that has misread the code —
            # this is precisely where the knowledge base earns its keep.
            pool = rng.sample(other_rules, k=min(3, len(other_rules)))
            if kb_hint:
                pool = list(kb_hint[:2]) + pool
                cap = 4
            if prior and rng.random() < 0.08:
                pool.insert(rng.randrange(len(pool) + 1), rng.choice(prior))
        seen: list[str] = []
        for rule in pool:
            if rule not in seen:
                seen.append(rule)
        plans.append(seen[:cap])
    return plans


def generate_plan_batch(client: LLMClient, features: ExtractedFeatures,
                        program: ast.Program, n: int,
                        difficulty: int = 2) -> list[list[str]]:
    """Sample ``n`` *independent* single-plan candidates in one batch.

    This is the standalone-LLM candidate fan-out (ask once, take ``n``
    samples) amortized through
    :meth:`~repro.llm.client.LLMClient.generate_batch`: each sample gets
    its own completion stream and rolls its own understanding/fidelity —
    statistically the same as ``n`` separate ``n_solutions=1`` generation
    rounds, but the prompt is ingested once and the fixed per-request
    latency is paid once.
    """
    if n < 1:
        return []
    code = print_program(program)
    prompt = SOLUTION_PROMPT.format(
        n=1, code=code, category=features.predicted_category.value, hints="")
    rngs = client.generate_batch("solution_generation", prompt, n,
                                 completion_tokens=120)
    return [rank_candidate_rules(client, features, program, 1,
                                 difficulty=difficulty, rng=sample_rng)[0]
            for sample_rng in rngs]


@dataclass(frozen=True)
class StepExecution:
    """How the model actually executed a planned repair step."""

    rule: str
    hallucinated: bool
    #: The model rewrote surrounding code too, perturbing an unrelated
    #: constant (applies after the planned rule).
    retouched: bool = False


def _adapts_exemplars(client: LLMClient) -> bool:
    """Per-repair trait: can this model instance integrate a retrieved
    exemplar into its working patch? Probability rises with orchestration
    quality; the roll is conversation-stable."""
    cached = getattr(client, "_adapts_trait", None)
    if cached is not None:
        return cached
    import hashlib as _hashlib
    key = f"adapt|{client.seed}|{client.profile.name}|{client.temperature:.3f}"
    digest = _hashlib.sha256(key.encode()).digest()
    roll = int.from_bytes(digest[:8], "big") / 2 ** 64
    trait = roll < (0.20 + 0.80 * client.profile.orchestration)
    client._adapts_trait = trait
    return trait


def _is_careless(client: LLMClient) -> bool:
    """Per-repair carelessness trait: a model instance that paraphrases
    constants does so *throughout the conversation*, not per call — so the
    retry loop cannot launder drift away by re-rolling."""
    cached = getattr(client, "_careless_trait", None)
    if cached is not None:
        return cached
    import hashlib as _hashlib
    key = (f"careless|{client.seed}|{client.profile.name}"
           f"|{client.temperature:.3f}")
    digest = _hashlib.sha256(key.encode()).digest()
    roll = int.from_bytes(digest[:8], "big") / 2 ** 64
    fidelity = min(1.0, client.profile.semantic_fidelity
                   * fidelity_factor(client.temperature))
    trait = roll < (1.0 - fidelity)
    client._careless_trait = trait
    return trait


def corrupt_step(client: LLMClient, rule: str, rng: random.Random | None = None,
                 guided: bool = False, orchestrated: bool = False,
                 ) -> StepExecution:
    """Decide how faithfully the model executes one repair step.

    Four outcomes:

    * hallucination (probability ``hallucination_rate × factor(T)``) — a
      corrupting edit that typically *grows* the error count (§III-B2);
    * sloppy execution — the right repair idea with carelessly-chosen
      constants: passes Miri, drifts semantics (drives pass-vs-exec gaps);
    * retouching — the planned fix plus an unnecessary rewrite of nearby
      code (LLMs regenerate whole functions), perturbing a constant;
    * faithful execution of the planned rule.

    ``guided=True`` marks steps backed by a knowledge-base exemplar or a
    recalled feedback plan: copying a concrete exemplar strongly suppresses
    careless constant drift (the KB's exec-rate advantage in Fig. 9).
    """
    from ..core.rewrites import HALLUCINATION_RULES, SLOPPY_VARIANTS
    if rng is None:
        rng = client.charge("apply_fix", f"Apply repair step: {rule}",
                            completion_tokens=180)
    if orchestrated:
        # Agent frameworks demand strict patch formats; models with weak
        # instruction-following emit unusable responses (no-op steps).
        noop_rate = (1.0 - client.profile.orchestration) * 0.55
        if rng.random() < noop_rate:
            return StepExecution("__unusable_patch__", False)
    rate = client.profile.hallucination_rate \
        * hallucination_factor(client.temperature)
    if rng.random() < rate:
        return StepExecution(rng.choice(HALLUCINATION_RULES), True)
    if _is_careless(client):
        if guided:
            # Copying an exemplar suppresses drift — but hot sampling
            # paraphrases even copied constants (the Fig. 11 high-T
            # semantic-integrity loss).
            drift_probability = 0.25 * hallucination_factor(
                client.temperature) / hallucination_factor(0.5)
        else:
            drift_probability = 0.85
        if rng.random() < drift_probability:
            sloppy = SLOPPY_VARIANTS.get(rule)
            if sloppy is not None:
                return StepExecution(sloppy, False)
            return StepExecution(rule, False, retouched=True)
    return StepExecution(rule, False)


def judge_semantics(client: LLMClient, original: str, repaired: str,
                    actually_equivalent: bool) -> bool:
    """Internal semantic-acceptability judgement (the triplet's second axis).

    A real system asks the model whether the repair preserves intent; our
    oracle answers correctly with probability ``semantic_fidelity`` (scaled
    by temperature) and errs otherwise.
    """
    rng = client.charge(
        "semantic_judgement",
        f"Do these two programs preserve semantics?\n{original}\n---\n{repaired}",
        completion_tokens=16,
    )
    accuracy = min(0.97, client.profile.semantic_fidelity
                   * fidelity_factor(client.temperature) + 0.15)
    if rng.random() < accuracy:
        return actually_equivalent
    return not actually_equivalent
