"""Simulated-LLM substrate: profiles, client, sampling, repair oracle.

No network access is available (or desirable) in this reproduction, so the
four models the paper evaluates (GPT-3.5, GPT-4, GPT-O1, Claude-3.5) are
replaced by stochastic rule-based oracles whose capability profiles are
calibrated against the paper's standalone-model results. See DESIGN.md
("Substitutions") for why this preserves the behaviours under study.
"""

from .client import ContextOverflow, LLMClient, LLMStats, VirtualClock
from .oracle import (
    CATEGORY_RULE_PRIORS,
    ExtractedFeatures,
    corrupt_step,
    extract_features,
    generate_plan_batch,
    judge_semantics,
    rank_candidate_rules,
)
from .profiles import PROFILES, ModelProfile, get_profile
from .sampling import (
    diversity_count,
    exploration_factor,
    fidelity_factor,
    hallucination_factor,
)
from .tokenizer import count_tokens, exceeds_context

__all__ = [
    "CATEGORY_RULE_PRIORS",
    "ContextOverflow",
    "ExtractedFeatures",
    "LLMClient",
    "LLMStats",
    "ModelProfile",
    "PROFILES",
    "VirtualClock",
    "corrupt_step",
    "count_tokens",
    "diversity_count",
    "exceeds_context",
    "exploration_factor",
    "extract_features",
    "fidelity_factor",
    "generate_plan_batch",
    "get_profile",
    "hallucination_factor",
    "judge_semantics",
    "rank_candidate_rules",
]
