"""Temperature model: how sampling temperature modulates the oracle.

Reproduces the RQ3 shape (Fig. 11): pass/exec rates peak near T = 0.5 —
low temperatures under-explore (the viable repair is never sampled), high
temperatures erode semantic integrity (more hallucinations, less fidelity).
"""

from __future__ import annotations


def exploration_factor(temperature: float) -> float:
    """Multiplier on solution-ranking quality, peaked at T = 0.5.

    The quadratic ``0.70 + 1.2 t - 1.2 t²`` is 0.70 at the extremes and
    1.0 at T = 0.5: low T repeatedly samples the same (possibly wrong)
    candidate, high T sprays across the rule space.
    """
    t = _clamp(temperature)
    return 0.55 + 1.8 * t - 1.8 * t * t


def fidelity_factor(temperature: float) -> float:
    """Multiplier on semantic fidelity, mid-peaked with a high-T skew.

    Low temperatures lock onto the first obvious (often blunt) repair and
    miss the semantics-preserving one; high temperatures paraphrase
    constants away. The factor peaks near T = 0.5 (Fig. 11's exec curve).
    """
    t = _clamp(temperature)
    return 0.70 + 1.25 * t - 1.30 * t * t


def hallucination_factor(temperature: float) -> float:
    """Multiplier on hallucination rate; grows with temperature."""
    t = _clamp(temperature)
    return 0.35 + 1.3 * t


def diversity_count(temperature: float, requested: int) -> int:
    """How many *distinct* candidate solutions sampling actually yields."""
    t = _clamp(temperature)
    distinct = max(1, round(requested * (0.35 + 1.0 * t)))
    return min(requested, distinct)


def _clamp(temperature: float) -> float:
    return max(0.0, min(1.0, temperature))
