"""RustBrain reproduction (DAC 2025).

An LLM-orchestration framework that repairs Undefined Behaviors in unsafe
Rust through "fast thinking" (feature extraction + multi-solution generation)
and "slow thinking" (decomposition, multi-agent verification with adaptive
rollback and abstract reasoning over a pruned-AST knowledge base), coupled by
a feedback mechanism.

Top-level convenience imports::

    from repro import RustBrain, detect_ub, load_dataset
    from repro import create_engine, Campaign, EngineSpec
"""

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid cycles.
    if name == "RustBrain":
        from .core.pipeline import RustBrain
        return RustBrain
    if name == "detect_ub":
        from .miri import detect_ub
        return detect_ub
    if name == "load_dataset":
        from .corpus.dataset import load_dataset
        return load_dataset
    if name in ("Campaign", "EngineSpec", "create_engine",
                "register_engine", "available_engines"):
        from . import engine
        return getattr(engine, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["Campaign", "EngineSpec", "RustBrain", "available_engines",
           "create_engine", "detect_ub", "load_dataset", "register_engine",
           "__version__"]
