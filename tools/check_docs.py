#!/usr/bin/env python3
"""Docs checker: keep README/DESIGN/docs code blocks and links from rotting.

Four mechanical checks over every tracked markdown file:

1. **Python blocks compile.**  Every ```` ```python ```` fence must be
   valid syntax (doctest-style blocks are converted via
   :func:`doctest.script_from_examples` first).  Nothing is executed —
   snippets may reference placeholder variables — but typos, stale
   f-string syntax, and half-renamed imports fail here.
2. **CLI flags exist.**  Every ``--flag`` on a ``repro.cli <subcommand>``
   line inside a ```` ```bash ```` fence must be an option argparse
   actually registers for that subcommand (continuation lines are
   joined first).  This is the drift the engines/campaign examples
   accumulated between PRs: documented flags are now validated against
   ``build_parser()`` itself, the single source of truth.
3. **Relative links resolve.**  Every ``[text](path)`` markdown link that
   is not an URL or pure anchor must point at an existing file.
4. **The schema/telemetry reference matches the code.**  The field
   tables in ``docs/reference.md`` are compared against the live
   dataclasses (`engine/telemetry.py` events, `engine/types.py`'s
   ``RepairReport``, `engine/results.py`'s ``CaseResult``): a field the
   doc lists but the class lacks — or the reverse — is an error.  With
   ``--strict``, the reference must also be *complete*: every telemetry
   event class and both result dataclasses need a documented table, and
   every versioned schema id the artifacts use must appear.

Run:  python tools/check_docs.py            # checks the default doc set
      python tools/check_docs.py FILE...    # checks specific files
      python tools/check_docs.py --strict … # + reference completeness
"""

from __future__ import annotations

import dataclasses
import doctest
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: The documentation set checked by default (plus everything in docs/).
DEFAULT_DOCS = ("README.md", "DESIGN.md", "ROADMAP.md", "PAPER.md")

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def iter_code_blocks(text: str):
    """Yield ``(language, content, first_line_number)`` per fenced block."""
    language = None
    content: list[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE_RE.match(line.strip())
        if match and language is None:
            language = match.group(1) or "text"
            content = []
            start = number + 1
        elif line.strip() == "```" and language is not None:
            yield language, "\n".join(content), start
            language = None
        elif language is not None:
            content.append(line)


def check_python_block(content: str) -> str | None:
    """Syntax-check one python block; returns an error message or None."""
    if ">>>" in content:
        try:
            content = doctest.script_from_examples(content)
        except ValueError as exc:
            return f"malformed doctest: {exc}"
    try:
        compile(content, "<doc snippet>", "exec")
    except SyntaxError as exc:
        return f"does not compile: {exc.msg} (snippet line {exc.lineno})"
    return None


def _subparsers_action(parser):
    import argparse
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    return None


def _cli_options() -> dict[str, set[str]]:
    """Subcommand name -> the option strings argparse registers for it.

    Command groups with nested subparsers (``repro corpus generate``)
    contribute space-joined keys, so documented flags validate against
    the leaf parser that actually defines them.
    """
    from repro.cli import build_parser

    options: dict[str, set[str]] = {}

    def collect(prefix: str, parser) -> None:
        options[prefix] = {option for action in parser._actions
                           for option in action.option_strings}
        nested = _subparsers_action(parser)
        if nested is not None:
            for name, sub in nested.choices.items():
                collect(f"{prefix} {name}", sub)

    top = _subparsers_action(build_parser())
    for name, sub in top.choices.items():
        collect(name, sub)
    return options


def _joined_commands(content: str):
    """Bash lines with backslash continuations merged."""
    pending = ""
    for line in content.splitlines():
        line = line.strip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield pending + line
        pending = ""
    if pending:
        yield pending


def check_bash_block(content: str, cli_options: dict[str, set[str]]):
    """Validate every documented repro.cli flag against argparse."""
    errors = []
    for command in _joined_commands(content):
        if "repro.cli" not in command:
            continue
        tail = command.split("repro.cli", 1)[1].split()
        if not tail:
            continue
        # Longest-prefix match so command groups resolve to their leaf
        # parser ("corpus generate" beats "corpus").
        subcommand = tail[0]
        consumed = 1
        if len(tail) > 1 and f"{tail[0]} {tail[1]}" in cli_options:
            subcommand = f"{tail[0]} {tail[1]}"
            consumed = 2
        valid = cli_options.get(subcommand)
        if valid is None:
            errors.append(f"unknown repro.cli subcommand {subcommand!r}")
            continue
        for flag in _FLAG_RE.findall(" ".join(tail[consumed:])):
            if flag not in valid:
                errors.append(
                    f"flag {flag} is not an option of "
                    f"'repro.cli {subcommand}'")
    return errors


_REFERENCE_DOC = "reference.md"

#: Markdown heading announcing a validated field table: any ``###``
#: heading whose *last* backticked word names one of the classes below.
_SECTION_RE = re.compile(r"^###\s.*`(\w+)`\s*$")
_TABLE_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def _documented_dataclasses() -> dict[str, type]:
    """Class name -> dataclass for every type the reference documents."""
    from repro.check import Diagnostic
    from repro.engine import results, telemetry, types

    classes = {cls.__name__: cls for cls in (
        telemetry.EngineStarted, telemetry.EngineFinished,
        telemetry.CaseStarted, telemetry.CaseFinished,
        telemetry.RoundFinished, telemetry.MemberFinished,
        telemetry.CacheQueried, telemetry.RetryAttempted)}
    classes["RepairReport"] = types.RepairReport
    classes["CaseResult"] = results.CaseResult
    classes["Diagnostic"] = Diagnostic
    return classes


def _current_schema_ids() -> list[str]:
    from repro.check import DIAGNOSTICS_SCHEMA
    from repro.corpus.manifest import MANIFEST_SCHEMA
    from repro.engine.cache import CACHE_SCHEMA
    from repro.miri import FINGERPRINT_VERSION

    ids = [CACHE_SCHEMA, DIAGNOSTICS_SCHEMA, FINGERPRINT_VERSION,
           MANIFEST_SCHEMA]
    # The campaign schema lives in campaign.py's to_dict; the bench
    # schemas in the benchmark scripts.  Read them from the source so the
    # checker cannot drift from a rename.
    campaign = (ROOT / "src/repro/engine/campaign.py").read_text(
        encoding="utf-8")
    ids += re.findall(r'"(repro\.campaign/\d+)"', campaign)
    journal = (ROOT / "src/repro/engine/journal.py").read_text(
        encoding="utf-8")
    ids += re.findall(r'"(repro\.journal/\d+)"', journal)
    for script in ("benchmarks/perf_smoke.py", "benchmarks/ensemble_smoke.py",
                   "benchmarks/service_smoke.py",
                   "benchmarks/chaos_smoke.py",
                   "benchmarks/corpus_smoke.py",
                   "benchmarks/compile_smoke.py"):
        text = (ROOT / script).read_text(encoding="utf-8")
        ids += re.findall(r'"(repro\.bench_\w+/\d+)"', text)
    return sorted(set(ids))


def _reference_sections(text: str) -> dict[str, list[str]]:
    """Documented class name -> field names from its markdown table."""
    known = _documented_dataclasses()
    sections: dict[str, list[str]] = {}
    current: str | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            match = _SECTION_RE.match(stripped)
            name = match.group(1) if match else None
            current = name if name in known else None
            continue
        if current is None:
            continue
        row = _TABLE_ROW_RE.match(stripped)
        if row and row.group(1) != "field":
            sections.setdefault(current, []).append(row.group(1))
    return sections


def check_reference(text: str, strict: bool = False) -> list[str]:
    """Validate the schema/telemetry reference against the live classes."""
    classes = _documented_dataclasses()
    sections = _reference_sections(text)
    errors: list[str] = []
    for name, documented in sections.items():
        actual = [f.name for f in dataclasses.fields(classes[name])]
        missing = sorted(set(actual) - set(documented))
        stale = sorted(set(documented) - set(actual))
        if missing:
            errors.append(f"{name}: undocumented field(s) "
                          f"{', '.join(missing)}")
        if stale:
            errors.append(f"{name}: documents nonexistent field(s) "
                          f"{', '.join(stale)}")
        duplicates = sorted({f for f in documented
                             if documented.count(f) > 1})
        if duplicates:
            errors.append(f"{name}: field(s) listed twice: "
                          f"{', '.join(duplicates)}")
    if strict:
        for name in sorted(set(classes) - set(sections)):
            errors.append(f"{name}: no documented field table")
        for schema_id in _current_schema_ids():
            if schema_id not in text:
                errors.append(f"schema id {schema_id!r} is not documented")
    return errors


def check_links(path: pathlib.Path, text: str):
    """Every relative markdown link must resolve from the file's parent."""
    errors = []
    for target in _LINK_RE.findall(text):
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"broken link: {target}")
    return errors


def check_file(path: pathlib.Path,
               cli_options: dict[str, set[str]] | None = None,
               strict: bool = False) -> list[str]:
    """All errors for one markdown file, each prefixed with its location."""
    cli_options = cli_options if cli_options is not None else _cli_options()
    text = path.read_text(encoding="utf-8")
    errors = [f"{path}: {error}" for error in check_links(path, text)]
    for language, content, line in iter_code_blocks(text):
        if language == "python":
            error = check_python_block(content)
            if error:
                errors.append(f"{path}:{line}: {error}")
        elif language in ("bash", "sh", "shell", "console"):
            errors.extend(f"{path}:{line}: {error}"
                          for error in check_bash_block(content, cli_options))
    if path.name == _REFERENCE_DOC:
        errors.extend(f"{path}: {error}"
                      for error in check_reference(text, strict=strict))
    return errors


def default_doc_paths() -> list[pathlib.Path]:
    paths = [ROOT / name for name in DEFAULT_DOCS if (ROOT / name).exists()]
    paths.extend(sorted((ROOT / "docs").glob("**/*.md")))
    return paths


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    strict = "--strict" in argv
    argv = [arg for arg in argv if arg != "--strict"]
    paths = ([pathlib.Path(arg) for arg in argv] if argv
             else default_doc_paths())
    if strict and not any(path.name == _REFERENCE_DOC for path in paths):
        print(f"--strict requires {_REFERENCE_DOC} in the checked set",
              file=sys.stderr)
        return 1
    cli_options = _cli_options()
    errors = []
    for path in paths:
        errors.extend(check_file(path, cli_options, strict=strict))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(paths)} docs"
          f"{' (strict)' if strict else ''}: "
          f"{'OK' if not errors else f'{len(errors)} problem(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
