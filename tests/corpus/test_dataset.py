"""Corpus validation: every case's ground truth must actually hold.

These tests are the contract the benchmarks rely on: buggy sources trigger
their labelled UB category, developer fixes pass, and every listed repair
strategy genuinely repairs the program (with the advertised exactness).
"""

import pytest

from repro.core.rewrites import REGISTRY, apply_rule
from repro.corpus.dataset import load_dataset
from repro.lang import parse_program, print_program
from repro.miri import detect_ub
from repro.miri.errors import PAPER_CATEGORIES, UbKind

DATASET = load_dataset()
ALL_CASES = list(DATASET)
IDS = [case.name for case in ALL_CASES]


class TestDatasetShape:
    def test_all_paper_categories_present(self):
        present = set(DATASET.categories())
        for category in PAPER_CATEGORIES:
            assert category in present, f"missing category {category}"

    def test_each_category_has_multiple_cases(self):
        for category in PAPER_CATEGORIES:
            assert len(DATASET.by_category(category)) >= 3, category

    def test_case_names_unique(self):
        names = [case.name for case in DATASET]
        assert len(names) == len(set(names))

    def test_dataset_size(self):
        assert len(DATASET) >= 70

    def test_get_by_name(self):
        case = DATASET.get(ALL_CASES[0].name)
        assert case is ALL_CASES[0]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            DATASET.get("no_such_case")

    def test_subset(self):
        sub = DATASET.subset([UbKind.PANIC])
        assert len(sub) > 0
        assert all(case.category is UbKind.PANIC for case in sub)

    def test_all_strategies_reference_registered_rules(self):
        for case in DATASET:
            for strategy in case.strategies:
                assert strategy.rule in REGISTRY, \
                    f"{case.name} references unknown rule {strategy.rule}"

    def test_every_case_has_a_strategy(self):
        for case in DATASET:
            assert case.strategies, case.name

    def test_difficulties_in_range(self):
        for case in DATASET:
            assert 1 <= case.difficulty <= 5


@pytest.mark.parametrize("case", ALL_CASES, ids=IDS)
class TestCaseGroundTruth:
    def test_buggy_triggers_labelled_category(self, case):
        report = detect_ub(case.source)
        assert not report.passed, f"{case.name}: buggy source passed"
        got = report.errors[0].kind
        if case.category is UbKind.TAIL_CALL:
            # Tail-call misuse surfaces as a function-pointer/call error.
            assert got in (UbKind.TAIL_CALL, UbKind.FUNC_POINTER,
                           UbKind.FUNC_CALL), report.render()
        else:
            assert got is case.category, report.render()

    def test_developer_fix_passes(self, case):
        report = detect_ub(case.fixed_source)
        assert report.passed, f"{case.name}: {report.render()}"

    def test_strategies_repair_the_program(self, case):
        program = parse_program(case.source)
        reference = detect_ub(case.fixed_source)
        for strategy in case.strategies:
            repaired = apply_rule(program, strategy.rule)
            assert repaired is not None, \
                f"{case.name}: {strategy.rule} inapplicable"
            report = detect_ub(print_program(repaired))
            assert report.passed, \
                f"{case.name}: {strategy.rule} left errors: {report.render()}"
            if strategy.exact:
                assert report.stdout == reference.stdout, \
                    f"{case.name}: {strategy.rule} changed observable output"
            else:
                assert report.stdout != reference.stdout, \
                    f"{case.name}: {strategy.rule} marked inexact but matches"


class TestNameIndex:
    def test_get_uses_the_index(self):
        case = ALL_CASES[0]
        assert DATASET.get(case.name) is DATASET._by_name[case.name]

    def test_get_every_case(self):
        for case in ALL_CASES:
            assert DATASET.get(case.name) == case

    def test_unknown_name_raises_key_error(self):
        with pytest.raises(KeyError):
            DATASET.get("no_such_case")

    def test_duplicate_names_rejected_at_load(self):
        from repro.corpus.dataset import Dataset, DuplicateCaseError
        case = ALL_CASES[0]
        with pytest.raises(DuplicateCaseError, match=case.name):
            Dataset((case, case))

    def test_subset_rebuilds_the_index(self):
        subset = DATASET.subset([ALL_CASES[0].category])
        assert subset.get(ALL_CASES[0].name) == ALL_CASES[0]
        other = next(case for case in ALL_CASES
                     if case.category is not ALL_CASES[0].category)
        with pytest.raises(KeyError):
            subset.get(other.name)
