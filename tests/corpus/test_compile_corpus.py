"""Tests for the compile-error corpus: validation contract, generator,
and manifest round-trip."""

import pytest

from repro.corpus import (CaseInvalid, Strategy, UbCase,
                          generate_compile_corpus, generate_corpus,
                          load_compile_dataset, load_dataset, load_manifest,
                          save_manifest, validate_case)
from repro.corpus.generator import COMPILE_TEMPLATES
from repro.corpus.manifest import manifest_bytes
from repro.miri.errors import UbKind


def _compile_case(**overrides) -> UbCase:
    base = dict(
        name="compile_probe",
        category=UbKind.COMPILE,
        description="probe",
        source='fn main() {\n    let x = 1;\n    x = 2;\n'
               '    println!("{}", x);\n}\n',
        fixed_source='fn main() {\n    let mut x = 1;\n    x = 2;\n'
                     '    println!("{}", x);\n}\n',
        strategies=(),
        expected_code="E0384",
    )
    base.update(overrides)
    return UbCase(**base)


class TestValidateCompileCase:
    def test_valid_case_passes_with_empty_strategies(self):
        assert validate_case(_compile_case()) == ()

    def test_clean_buggy_source_rejected(self):
        case = _compile_case(source=_compile_case().fixed_source)
        with pytest.raises(CaseInvalid) as err:
            validate_case(case)
        assert err.value.reason == "checks_clean"

    def test_mislabelled_code_rejected(self):
        with pytest.raises(CaseInvalid) as err:
            validate_case(_compile_case(expected_code="E0425"))
        assert err.value.reason == "wrong_code"

    def test_missing_label_rejected(self):
        with pytest.raises(CaseInvalid) as err:
            validate_case(_compile_case(expected_code=None))
        assert err.value.reason == "wrong_code"

    def test_diagnostic_fixed_source_rejected(self):
        case = _compile_case(fixed_source=_compile_case().source)
        with pytest.raises(CaseInvalid) as err:
            validate_case(case)
        assert err.value.reason == "fixed_source_diagnostics"

    def test_ub_fixed_source_rejected(self):
        case = _compile_case(
            fixed_source='fn main() {\n'
                         '    let mu: MaybeUninit<i32> = '
                         'MaybeUninit::uninit();\n'
                         '    let v = unsafe { mu.assume_init() };\n'
                         '    println!("{}", v);\n}\n')
        with pytest.raises(CaseInvalid) as err:
            validate_case(case)
        assert err.value.reason == "fixed_source_ub"

    def test_hand_written_corpus_validates(self):
        for case in load_compile_dataset():
            validate_case(case)


class TestCompileDataset:
    def test_disjoint_from_dynamic_corpus(self):
        dynamic_names = {case.name for case in load_dataset()}
        compile_names = {case.name for case in load_compile_dataset()}
        assert not dynamic_names & compile_names
        assert all(case.category is UbKind.COMPILE
                   for case in load_compile_dataset())

    def test_dynamic_corpus_has_no_expected_codes(self):
        assert all(case.expected_code is None for case in load_dataset())

    def test_compile_cases_all_labelled(self):
        assert all(case.expected_code for case in load_compile_dataset())


class TestGenerateCompileCorpus:
    def test_deterministic_in_seed(self):
        first, first_report = generate_compile_corpus(8, seed=3)
        second, second_report = generate_compile_corpus(8, seed=3)
        assert manifest_bytes(first, first_report) \
            == manifest_bytes(second, second_report)

    def test_templates_round_robin(self):
        cases, _ = generate_compile_corpus(len(COMPILE_TEMPLATES), seed=3)
        assert [case.expected_code for case in cases] \
            == [template.expected_code for template in COMPILE_TEMPLATES]

    def test_every_emitted_case_validates(self):
        cases, report = generate_compile_corpus(6, seed=9)
        assert report.emitted == 6
        for case in cases:
            validate_case(case)

    def test_ub_generator_stream_untouched(self):
        # The compile templates live outside the UB generator's rng
        # stream: the same (n, seed) dynamic corpus must not change.
        before = manifest_bytes(*generate_corpus(4, seed=5))
        generate_compile_corpus(4, seed=5)
        assert manifest_bytes(*generate_corpus(4, seed=5)) == before


class TestManifestRoundTrip:
    def test_expected_code_survives(self, tmp_path):
        cases, report = generate_compile_corpus(4, seed=2)
        path = save_manifest(cases, tmp_path / "compile.json", report)
        loaded = load_manifest(path)
        assert [(c.name, c.expected_code) for c in loaded] \
            == [(c.name, c.expected_code) for c in cases]

    def test_dynamic_manifest_layout_unchanged(self):
        cases, report = generate_corpus(3, seed=8)
        assert b"expected_code" not in manifest_bytes(cases, report)
