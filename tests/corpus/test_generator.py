"""Generator contract: determinism, self-validation, structured rejection,
and manifest round-trips."""

import json
import random

import pytest

from repro.corpus import (CaseInvalid, GenerationError, ManifestError,
                          Strategy, UbCase, generate_corpus, generate_sources,
                          load_dataset, load_manifest, save_manifest,
                          validate_case)
from repro.corpus.generator import (MUTATION_OPERATORS, MutationSkip,
                                    generatable_categories, mutate_case)
from repro.corpus.manifest import MANIFEST_SCHEMA, manifest_bytes
from repro.miri import detect_ub
from repro.miri.errors import UbKind

N = 40
SEED = 7


@pytest.fixture(scope="module")
def generated():
    return generate_corpus(N, SEED)


class TestDeterminism:
    def test_same_seed_same_manifest_bytes(self, generated):
        cases, report = generated
        again, again_report = generate_corpus(N, SEED)
        assert manifest_bytes(again, again_report) == \
            manifest_bytes(cases, report)

    def test_different_seed_differs(self, generated):
        cases, _ = generated
        other, _ = generate_corpus(N, SEED + 1)
        assert manifest_bytes(other) != manifest_bytes(cases)

    def test_sources_deterministic(self):
        assert generate_sources(30, seed=3) == generate_sources(30, seed=3)


class TestEmittedCases:
    def test_requested_count(self, generated):
        cases, report = generated
        assert len(cases) == N
        assert report.emitted == N

    def test_every_case_revalidates(self, generated):
        cases, _ = generated
        for case in cases:
            assert validate_case(case)

    def test_covers_every_generatable_category(self, generated):
        cases, _ = generated
        seen = {case.category for case in cases}
        assert seen == set(generatable_categories())

    def test_names_unique_and_not_in_base(self, generated):
        cases, _ = generated
        names = [case.name for case in cases]
        assert len(set(names)) == len(names)
        base = {case.name for case in load_dataset()}
        assert not base & set(names)

    def test_sources_distinct_from_base(self, generated):
        cases, _ = generated
        base = {case.source for case in load_dataset()}
        for case in cases:
            assert case.source not in base

    def test_category_filter(self):
        cases, _ = generate_corpus(6, SEED,
                                   categories=[UbKind.UNALIGNED])
        assert all(case.category is UbKind.UNALIGNED for case in cases)

    def test_unsupported_category_rejected(self):
        with pytest.raises(GenerationError):
            generate_corpus(2, SEED, categories=[UbKind.RESOURCE])

    def test_negative_n_rejected(self):
        with pytest.raises(GenerationError):
            generate_corpus(-1, SEED)

    def test_report_counts_attempts(self, generated):
        _, report = generated
        assert report.attempts >= report.emitted
        for stats in report.to_dict()["categories"].values():
            assert stats["attempts"] == stats["emitted"] \
                + stats["total_rejected"]


def _base_case(category=UbKind.ALLOC):
    return load_dataset().by_category(category)[0]


class TestValidatorRejections:
    """Crafted invalid cases must be rejected with a structured reason."""

    def test_wrong_kind_label(self):
        case = _base_case(UbKind.ALLOC)
        mislabelled = UbCase(
            name="bad_label", category=UbKind.DATA_RACE,
            description=case.description, source=case.source,
            fixed_source=case.fixed_source, strategies=case.strategies)
        with pytest.raises(CaseInvalid) as excinfo:
            validate_case(mislabelled)
        assert excinfo.value.reason == "wrong_kind"

    def test_source_without_ub(self):
        case = _base_case()
        clean = UbCase(
            name="no_bug", category=case.category,
            description=case.description, source=case.fixed_source,
            fixed_source=case.fixed_source, strategies=case.strategies)
        with pytest.raises(CaseInvalid) as excinfo:
            validate_case(clean)
        assert excinfo.value.reason == "source_passes"

    def test_ub_in_fixed_source(self):
        case = _base_case()
        broken_fix = UbCase(
            name="bad_fix", category=case.category,
            description=case.description, source=case.source,
            fixed_source=case.source, strategies=case.strategies)
        with pytest.raises(CaseInvalid) as excinfo:
            validate_case(broken_fix)
        assert excinfo.value.reason == "fixed_source_ub"

    def test_non_repairing_strategy(self):
        case = _base_case(UbKind.ALLOC)
        # A real registered rule that has nothing to rewrite here.
        useless = UbCase(
            name="bad_strategy", category=case.category,
            description=case.description, source=case.source,
            fixed_source=case.fixed_source,
            strategies=(Strategy("fix_call_arity"),))
        with pytest.raises(CaseInvalid) as excinfo:
            validate_case(useless)
        assert excinfo.value.reason == "no_repairing_strategy"

    def test_unregistered_rule(self):
        case = _base_case()
        phantom = UbCase(
            name="bad_rule", category=case.category,
            description=case.description, source=case.source,
            fixed_source=case.fixed_source,
            strategies=(Strategy("summon_the_borrow_checker"),))
        with pytest.raises(CaseInvalid) as excinfo:
            validate_case(phantom)
        assert excinfo.value.reason == "unknown_rule"

    def test_exactness_is_recomputed(self, generated):
        cases, _ = generated
        for case in cases[:10]:
            reference = detect_ub(case.fixed_source)
            for strategy in case.strategies:
                from repro.core.rewrites import apply_rule
                from repro.lang.parser import parse_program
                from repro.lang.printer import print_program
                repaired = apply_rule(parse_program(case.source),
                                      strategy.rule)
                assert repaired is not None
                outcome = detect_ub(print_program(repaired))
                assert outcome.passed
                assert strategy.exact == \
                    (outcome.stdout == reference.stdout)


class TestMutationOperators:
    def test_chain_skips_raise(self):
        case = _base_case()
        with pytest.raises(MutationSkip):
            # An empty chain can never apply.
            mutate_case(case, random.Random(0), operators=[])

    def test_named_chain_applies(self):
        case = _base_case()
        mutant = mutate_case(case, random.Random(0),
                             operators=["rename", "inject"])
        assert mutant.source != case.source
        assert "rename" in mutant.name and "inject" in mutant.name

    def test_operator_table_stable(self):
        # Generation samples operators by table order; reordering the
        # table silently reseeds every corpus.
        assert list(MUTATION_OPERATORS) == \
            ["rename", "format", "distract", "reorder", "inject", "perturb"]


class TestManifest:
    def test_round_trip(self, generated, tmp_path):
        cases, report = generated
        path = save_manifest(cases, tmp_path / "corpus.json", report)
        dataset = load_manifest(path)
        assert len(dataset) == len(cases)
        for case in cases:
            assert dataset.get(case.name) == case

    def test_schema_id_present(self, generated, tmp_path):
        cases, report = generated
        path = save_manifest(cases, tmp_path / "corpus.json", report)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["schema"] == MANIFEST_SCHEMA == "repro.corpus/1"
        assert document["count"] == len(cases)
        assert document["report"]["emitted"] == len(cases)

    def test_fingerprint_tamper_detected(self, generated, tmp_path):
        cases, _ = generated
        path = save_manifest(cases[:3], tmp_path / "corpus.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        # A comment would not do: the fingerprint is formatting-invariant.
        document["cases"][1]["source"] += "\nfn tampered() { let z = 1; }\n"
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ManifestError, match="fingerprint"):
            load_manifest(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"schema": "repro.corpus/99",
                                    "cases": [], "count": 0}),
                        encoding="utf-8")
        with pytest.raises(ManifestError, match="schema"):
            load_manifest(path)

    def test_count_mismatch_rejected(self, generated, tmp_path):
        cases, _ = generated
        path = save_manifest(cases[:2], tmp_path / "corpus.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        document["count"] = 5
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ManifestError, match="count"):
            load_manifest(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestError):
            load_manifest(garbled)
