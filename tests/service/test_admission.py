"""Admission primitives: token buckets and the per-client rate limiter."""

import pytest

from repro.service.admission import (RateLimiter, TokenBucket,
                                     retry_after_header)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_starts_full(self, clock):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 2.0

    def test_retry_after_matches_refill(self, clock):
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_rejection_does_not_debit(self, clock):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == before

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0)])
    def test_invalid_parameters_rejected(self, clock, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst, clock=clock)


class TestRateLimiter:
    def test_admits_within_burst_then_rejects(self, clock):
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") > 0.0

    def test_clients_are_independent(self, clock):
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") > 0.0
        assert limiter.admit("bob") == 0.0

    def test_rejected_client_recovers_after_wait(self, clock):
        limiter = RateLimiter(rate=2.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        wait = limiter.admit("alice")
        assert wait == pytest.approx(0.5)
        clock.advance(wait)
        assert limiter.admit("alice") == 0.0

    def test_rejection_advice_is_never_zero(self, clock):
        limiter = RateLimiter(rate=1000.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") >= 1e-3

    def test_client_table_is_bounded_lru(self, clock):
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock,
                              max_clients=2)
        limiter.admit("a")
        limiter.admit("b")
        limiter.admit("a")      # refresh a; b is now oldest
        limiter.admit("c")      # evicts b
        assert limiter.clients() == 2
        # b returns with a fresh bucket (full burst) rather than history.
        assert limiter.admit("b") == 0.0

    def test_eviction_resets_history(self, clock):
        limiter = RateLimiter(rate=0.001, burst=1.0, clock=clock,
                              max_clients=1)
        assert limiter.admit("a") == 0.0
        assert limiter.admit("a") > 0.0      # exhausted
        limiter.admit("b")                   # evicts a
        assert limiter.admit("a") == 0.0     # fresh bucket


class TestRetryAfterHeader:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0, "1"), (0.2, "1"), (1.0, "1"), (1.1, "2"), (30.0, "30"),
    ])
    def test_whole_seconds_at_least_one(self, seconds, expected):
        assert retry_after_header(seconds) == expected
