"""Admission primitives: token buckets, rate limiter, circuit breaker,
drain estimator."""

import pytest

from repro.service.admission import (CircuitBreaker, DrainEstimator,
                                     RateLimiter, TokenBucket,
                                     retry_after_header)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_starts_full(self, clock):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 2.0

    def test_retry_after_matches_refill(self, clock):
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_rejection_does_not_debit(self, clock):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == before

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0)])
    def test_invalid_parameters_rejected(self, clock, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst, clock=clock)


class TestRateLimiter:
    def test_admits_within_burst_then_rejects(self, clock):
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") > 0.0

    def test_clients_are_independent(self, clock):
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") > 0.0
        assert limiter.admit("bob") == 0.0

    def test_rejected_client_recovers_after_wait(self, clock):
        limiter = RateLimiter(rate=2.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        wait = limiter.admit("alice")
        assert wait == pytest.approx(0.5)
        clock.advance(wait)
        assert limiter.admit("alice") == 0.0

    def test_rejection_advice_is_never_zero(self, clock):
        limiter = RateLimiter(rate=1000.0, burst=1.0, clock=clock)
        assert limiter.admit("alice") == 0.0
        assert limiter.admit("alice") >= 1e-3

    def test_client_table_is_bounded_lru(self, clock):
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock,
                              max_clients=2)
        limiter.admit("a")
        limiter.admit("b")
        limiter.admit("a")      # refresh a; b is now oldest
        limiter.admit("c")      # evicts b
        assert limiter.clients() == 2
        # b returns with a fresh bucket (full burst) rather than history.
        assert limiter.admit("b") == 0.0

    def test_eviction_resets_history(self, clock):
        limiter = RateLimiter(rate=0.001, burst=1.0, clock=clock,
                              max_clients=1)
        assert limiter.admit("a") == 0.0
        assert limiter.admit("a") > 0.0      # exhausted
        limiter.admit("b")                   # evicts a
        assert limiter.admit("a") == 0.0     # fresh bucket


class TestRetryAfterHeader:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0, "1"), (0.2, "1"), (1.0, "1"), (1.1, "2"), (30.0, "30"),
    ])
    def test_whole_seconds_at_least_one(self, seconds, expected):
        assert retry_after_header(seconds) == expected


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self, clock):
        breaker = CircuitBreaker(threshold=3, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow() == (True, 0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        admitted, wait = breaker.allow()
        assert not admitted
        assert 0 < wait <= 10.0

    def test_success_resets_the_count(self, clock):
        breaker = CircuitBreaker(threshold=2, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow() == (True, 0.0)   # the probe
        admitted, wait = breaker.allow()        # probe in flight
        assert not admitted and wait > 0

    def test_successful_probe_closes(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() == (True, 0.0)

    def test_failed_probe_reopens_a_fresh_window(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"     # the window restarted
        clock.advance(0.1)
        assert breaker.state == "half_open"

    def test_abort_probe_frees_the_slot(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() == (True, 0.0)
        breaker.abort_probe()
        # The next request becomes the probe instead.
        assert breaker.allow() == (True, 0.0)

    def test_straggler_failure_while_open_keeps_the_window(self, clock):
        # A job admitted before the trip finishes (failing) while open:
        # the reset window must NOT extend, or probe timing drifts.
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.record_failure()  # straggler
        clock.advance(5.0)
        assert breaker.state == "half_open"

    def test_to_dict_snapshot(self, clock):
        breaker = CircuitBreaker(threshold=4, reset_seconds=7.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.to_dict() == {
            "state": "closed", "consecutive_failures": 1,
            "threshold": 4, "reset_seconds": 7.0}

    @pytest.mark.parametrize("threshold,reset", [(0, 1.0), (1, 0.0)])
    def test_invalid_parameters_rejected(self, clock, threshold, reset):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold, reset, clock=clock)


class TestDrainEstimator:
    def test_default_before_any_observation(self):
        estimator = DrainEstimator(default_seconds=2.0)
        assert estimator.mean_seconds == 2.0
        assert estimator.estimate(pending=4, workers=2) == 4.0

    def test_running_mean_after_observations(self):
        estimator = DrainEstimator()
        estimator.observe(1.0)
        estimator.observe(3.0)
        assert estimator.mean_seconds == 2.0
        assert estimator.estimate(pending=6, workers=3) == 4.0

    def test_estimate_has_a_floor(self):
        estimator = DrainEstimator()
        estimator.observe(0.0)
        assert estimator.estimate(pending=0, workers=4) == 0.1

    def test_to_dict(self):
        estimator = DrainEstimator()
        estimator.observe(1.5)
        assert estimator.to_dict() == {"mean_seconds": 1.5,
                                       "observed_jobs": 1}

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            DrainEstimator(default_seconds=0.0)
