"""Job layer: payload validation, coalescing identity, campaign parity."""

import asyncio
import dataclasses
import json

import pytest

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import Campaign, ResultCache
from repro.engine.telemetry import TelemetryLog
from repro.service.jobs import (EventLog, JobConfig, RequestError,
                                cache_key_for, coalesce_key, execute_repair,
                                validate_timeout_seconds)

SEED = 5


@pytest.fixture(scope="module")
def case():
    return list(load_dataset())[0]


def payload_for(case, **extra) -> dict:
    payload = {"source": case.source, "engine": "rustbrain?kb=off",
               "seed": SEED, "name": case.name,
               "difficulty": case.difficulty,
               "category": case.category.value,
               "reference_source": case.fixed_source}
    payload.update(extra)
    return payload


class TestTimeoutValidation:
    @pytest.mark.parametrize("value,expected", [
        (None, None), (5, 5.0), (0.25, 0.25), ("2.5", 2.5), ("10", 10.0),
    ])
    def test_valid_values(self, value, expected):
        assert validate_timeout_seconds(value) == expected

    @pytest.mark.parametrize("value", [
        "abc", "", 0, -1, "-3", float("nan"), float("inf"), "inf", True,
        [5],
    ])
    def test_malformed_values_rejected(self, value):
        with pytest.raises(RequestError, match="timeout_seconds"):
            validate_timeout_seconds(value)


class TestFromPayload:
    def test_minimal_payload(self):
        config = JobConfig.from_payload({"source": "fn main() {}"})
        assert config.spec.name == "rustbrain"
        assert config.model == "gpt-4"
        assert config.seed == 0
        assert config.request.index == 0
        assert config.wait is True

    def test_full_payload_round_trips(self, case):
        config = JobConfig.from_payload(payload_for(
            case, index=3, timeout_seconds=2.5, wait=False))
        assert config.request.name == case.name
        assert config.request.index == 3
        assert config.request.category == case.category
        assert config.timeout_seconds == 2.5
        assert config.wait is False

    @pytest.mark.parametrize("broken,match", [
        ("not a dict", "JSON object"),
        ({}, "source"),
        ({"source": ""}, "source"),
        ({"source": 42}, "source"),
        ({"source": "fn main() {}", "engine": "no_such_engine"},
         "no_such_engine"),
        ({"source": "fn main() {}", "engine": "rustbrain?bogus=1"}, "bogus"),
        ({"source": "fn main() {}", "engine": "???"}, "invalid engine name"),
        ({"source": "fn main() {}", "seed": "seven"}, "seed"),
        ({"source": "fn main() {}", "seed": True}, "seed"),
        ({"source": "fn main() {}", "temperature": "hot"}, "temperature"),
        ({"source": "fn main() {}", "difficulty": 1.5}, "difficulty"),
        ({"source": "fn main() {}", "index": -1}, "index"),
        ({"source": "fn main() {}", "category": "bogus"}, "category"),
        ({"source": "fn main() {}", "reference_source": 7},
         "reference_source"),
        ({"source": "fn main() {}", "wait": "yes"}, "wait"),
        ({"source": "fn main() {}", "timeout_seconds": "soon"},
         "timeout_seconds"),
        ({"source": "fn main() {}", "sorce": "typo"}, "unknown field"),
    ])
    def test_malformed_payloads_rejected(self, broken, match):
        with pytest.raises(RequestError, match=match):
            JobConfig.from_payload(broken)

    def test_spec_pinned_seed_hoists_like_campaign(self):
        pinned = JobConfig.from_payload(
            {"source": "fn main() {}", "engine": "rustbrain?seed=7",
             "seed": 99, "index": 2})
        plain = JobConfig.from_payload(
            {"source": "fn main() {}", "engine": "rustbrain", "seed": 7,
             "index": 2})
        assert pinned.derived_seed() == plain.derived_seed()


class TestCoalesceKey:
    def test_identical_requests_share_a_key(self, case):
        first = JobConfig.from_payload(payload_for(case))
        second = JobConfig.from_payload(payload_for(case))
        assert coalesce_key(first) == coalesce_key(second)

    def test_formatting_divergent_sources_share_a_key(self, case):
        plain = JobConfig.from_payload(payload_for(case))
        commented = JobConfig.from_payload(payload_for(case))
        commented = dataclasses.replace(
            commented, request=dataclasses.replace(
                commented.request,
                source=case.source + "\n// trailing comment\n"))
        assert coalesce_key(plain) == coalesce_key(commented)
        # ... while the cache stays raw-source addressed.
        assert cache_key_for(plain) != cache_key_for(commented)

    @pytest.mark.parametrize("change", [
        {"engine": "rustbrain"}, {"model": "gpt-3.5"}, {"seed": SEED + 1},
        {"temperature": 0.2}, {"index": 1}, {"name": "other"},
        {"difficulty": 3}, {"reference_source": None},
    ])
    def test_any_other_input_change_splits_the_key(self, case, change):
        base = JobConfig.from_payload(payload_for(case))
        varied = JobConfig.from_payload(payload_for(case, **change))
        assert coalesce_key(base) != coalesce_key(varied)

    def test_timeout_and_wait_do_not_split_the_key(self, case):
        base = JobConfig.from_payload(payload_for(case))
        varied = JobConfig.from_payload(payload_for(
            case, timeout_seconds=9, wait=False))
        assert coalesce_key(base) == coalesce_key(varied)


class TestExecuteRepairParity:
    """The service execution path must be indistinguishable from a
    one-case batch campaign: same report bytes, same event stream."""

    def _campaign(self, case, cache=None):
        return Campaign(["rustbrain?kb=off"], Dataset((case,)), seed=SEED,
                        executor="serial", cache=cache)

    def test_report_is_byte_identical_to_campaign(self, case):
        campaign = self._campaign(case).run()
        batch = campaign.arms[0].reports[0].to_dict()
        config = JobConfig.from_payload(payload_for(case))
        service = execute_repair(config).to_dict()
        assert json.dumps(service, sort_keys=True) == \
            json.dumps(batch, sort_keys=True)

    def test_event_stream_matches_campaign(self, case, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        log = TelemetryLog()
        campaign = self._campaign(case, cache=cache)
        campaign.run()
        batch_events = list(campaign.telemetry.events)
        cache.clear()
        config = JobConfig.from_payload(payload_for(case))
        execute_repair(config, cache=cache, observer=log)
        assert log.events == batch_events

    def test_cache_hit_replays_identically(self, case, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = JobConfig.from_payload(payload_for(case))
        cold = execute_repair(config, cache=cache)
        warm_log = TelemetryLog()
        warm = execute_repair(config, cache=cache, observer=warm_log)
        assert warm == cold
        hits, misses = warm_log.cache_counts()
        assert (hits, misses) == (1, 0)

    def test_cache_key_matches_campaign_entry(self, case, tmp_path):
        # The service must hit entries a batch campaign wrote, and vice
        # versa — one shared read-through tier, not two namespaces.
        cache = ResultCache(tmp_path / "cache")
        self._campaign(case, cache=cache).run()
        config = JobConfig.from_payload(payload_for(case))
        assert cache.get(cache_key_for(config)) is not None

    def test_ensemble_arm_emits_member_events(self, case):
        log = TelemetryLog()
        config = JobConfig.from_payload(payload_for(case, engine="cascade"))
        report = execute_repair(config, observer=log)
        from repro.engine.telemetry import MemberFinished
        assert log.count(MemberFinished) == len(report.members) > 0


class TestEventLog:
    def test_frames_record_every_hook(self, case):
        log = EventLog()
        config = JobConfig.from_payload(payload_for(case))
        execute_repair(config, observer=log)
        names = [name for name, _payload in log.frames()]
        assert names[0] == "engine_started"
        assert names[-1] == "engine_finished"
        assert "case_started" in names and "case_finished" in names

    def test_stream_replays_and_terminates(self, case):
        async def scenario():
            log = EventLog(asyncio.get_running_loop())
            config = JobConfig.from_payload(payload_for(case))
            execute_repair(config, observer=log)
            log.mark_done("job_finished", {"id": "j1", "status": "done"})
            return [frame async for frame in log.stream()]

        frames = asyncio.run(scenario())
        assert frames[-1][0] == "job_finished"
        assert frames[-1][1]["status"] == "done"

    def test_stream_wakes_on_late_frames(self, case):
        async def scenario():
            loop = asyncio.get_running_loop()
            log = EventLog(loop)
            collected = []

            async def consume():
                async for frame in log.stream():
                    collected.append(frame)

            task = asyncio.create_task(consume())
            await asyncio.sleep(0)  # parked on the wakeup event
            config = JobConfig.from_payload(payload_for(case))
            await asyncio.to_thread(execute_repair, config, observer=log)
            log.mark_done("job_finished", {"id": "j1", "status": "done"})
            await asyncio.wait_for(task, timeout=5)
            return collected

        frames = asyncio.run(scenario())
        assert [name for name, _payload in frames][-1] == "job_finished"
        assert len(frames) > 1

    def test_frames_after_done_are_dropped(self):
        log = EventLog()
        log.mark_done("job_finished", {"status": "cancelled"})
        from repro.engine.telemetry import EngineStarted
        log.on_engine_start(EngineStarted(engine="x", cases=1))
        assert [name for name, _payload in log.frames()] == ["job_finished"]

    def test_bounded_with_truncation_marker_and_terminal_frame(self):
        from repro.engine.telemetry import EngineStarted
        log = EventLog(max_frames=4)
        for index in range(10):
            log.on_engine_start(EngineStarted(engine=f"e{index}", cases=1))
        log.mark_done("job_finished", {"status": "done"})
        names = [name for name, _payload in log.frames()]
        # 3 ordinary slots, then the marker, then the terminal frame.
        assert names == ["engine_started", "engine_started",
                         "engine_started", "events_truncated",
                         "job_finished"]
        assert log.dropped == 7
        marker = dict(log.frames())["events_truncated"]
        assert marker == {"max_frames": 4}

    def test_max_frames_validation(self):
        with pytest.raises(ValueError):
            EventLog(max_frames=1)


class TestServiceFaults:
    """The service job runner retries injected ``service:fail`` faults
    and surfaces each retry as an EventLog frame."""

    def _run_faulted(self, case, plan):
        from repro.engine.faults import install
        from repro.engine.retry import RetryPolicy
        log = EventLog()
        config = JobConfig.from_payload(payload_for(case))
        previous = install(plan)
        try:
            fast = RetryPolicy(attempts=4, base_delay=0, jitter=0,
                               sleep=lambda _s: None)
            report = execute_repair(config, observer=log, retry=fast)
        finally:
            install(previous)
        return report, log

    def test_faulted_job_retries_and_matches_fault_free(self, case):
        config = JobConfig.from_payload(payload_for(case))
        clean = execute_repair(config)
        report, log = self._run_faulted(case, "service:fail=1")
        assert report == clean
        names = [name for name, _payload in log.frames()]
        # Default depth 2: exactly two failed attempts, then success.
        assert names[:2] == ["retry_attempted", "retry_attempted"]
        retries = [payload for name, payload in log.frames()
                   if name == "retry_attempted"]
        assert all(payload["site"] == "service" for payload in retries)
        assert [payload["attempt"] for payload in retries] == [1, 2]

    def test_exhaustion_surfaces_the_transient_error(self, case):
        from repro.engine.faults import TransientServiceError
        with pytest.raises(TransientServiceError):
            self._run_faulted(case, "service:fail=1,depth=99")
