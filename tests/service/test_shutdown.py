"""Graceful shutdown: drain in-flight work, 503 the queue, release leases.

Every scenario injects its own :class:`ExecutorService` with a known
budget so lease accounting can be asserted exactly — the acceptance bar
is ``budget.in_use == 0`` after ``stop()``, i.e. zero leaked leases.
"""

import asyncio
import threading

import pytest

from repro.corpus.dataset import load_dataset
from repro.engine.pool import CoreBudget, ExecutorService
from repro.service import client, jobs
from repro.service.server import RepairServer

SEED = 5
HOST = "127.0.0.1"


@pytest.fixture(scope="module")
def cases():
    return list(load_dataset())[:3]


@pytest.fixture
def service():
    service = ExecutorService(budget=CoreBudget(4))
    yield service
    service.shutdown()


def payload_for(case, **extra) -> dict:
    payload = {"source": case.source, "engine": "rustbrain?kb=off",
               "seed": SEED, "name": case.name,
               "difficulty": case.difficulty,
               "category": case.category.value,
               "reference_source": case.fixed_source}
    payload.update(extra)
    return payload


def run(coroutine, timeout=60):
    async def bounded():
        return await asyncio.wait_for(coroutine, timeout)
    return asyncio.run(bounded())


class _Gate:
    def __init__(self):
        self.release = threading.Event()
        self.started = []
        self._real = jobs.execute_repair

    def __call__(self, config, *, cache=None, observer=None):
        self.started.append(config.request.name)
        assert self.release.wait(timeout=30), "gate never released"
        return self._real(config, cache=cache, observer=observer)


class TestGracefulShutdown:
    def test_inflight_job_drains_and_waiter_gets_its_report(
            self, cases, service, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            server = RepairServer(host=HOST, port=0, workers=2,
                                  executor_service=service)
            await server.start()
            waiter = asyncio.create_task(
                client.post_repair(HOST, server.port,
                                   payload_for(cases[0])))
            while not gate.started:
                await asyncio.sleep(0.01)
            stopper = asyncio.create_task(server.stop())
            await asyncio.sleep(0.05)
            assert not stopper.done()  # stop() waits for the running job
            gate.release.set()
            await stopper
            return (await waiter).json(), server

        body, server = run(scenario())
        assert body["status"] == "done"
        assert body["report"]["case"] == cases[0].name
        assert server.counters.completed == 1

    def test_queued_jobs_are_cancelled_with_503(self, cases, service,
                                                monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            server = RepairServer(host=HOST, port=0, workers=1,
                                  executor_service=service)
            await server.start()
            running = asyncio.create_task(
                client.post_repair(HOST, server.port,
                                   payload_for(cases[0])))
            while not gate.started:
                await asyncio.sleep(0.01)
            queued = asyncio.create_task(
                client.post_repair(HOST, server.port,
                                   payload_for(cases[1])))
            while not server._queue:  # admitted but no free worker
                await asyncio.sleep(0.01)
            stopper = asyncio.create_task(server.stop())
            cancelled = (await queued).json()
            gate.release.set()
            await stopper
            return (await running).json(), cancelled, server

        drained, cancelled, server = run(scenario())
        assert drained["status"] == "done"
        assert cancelled["status"] == "cancelled"
        assert cancelled["error"] == "server shutting down"
        assert "report" not in cancelled
        assert server.counters.cancelled == 1
        assert len(gate.started) == 1  # the queued job never executed

    def test_draining_server_rejects_new_submissions(self, cases, service):
        async def scenario():
            server = RepairServer(host=HOST, port=0,
                                  executor_service=service)
            await server.start()
            # Flip the drain flag without closing the socket so the
            # rejection path (not a connection error) is what we observe.
            server._draining = True
            response = await client.post_repair(HOST, server.port,
                                                payload_for(cases[0]))
            health = await client.get_json(HOST, server.port, "/healthz")
            server._draining = False
            await server.stop()
            return response, health

        response, health = run(scenario())
        assert response.status == 503
        assert response.retry_after == "1"
        assert "shutting down" in response.json()["error"]
        assert health.json() == {"status": "draining"}

    def test_no_leases_leak_across_a_server_lifecycle(self, cases, service):
        async def scenario():
            server = RepairServer(host=HOST, port=0, workers=3,
                                  executor_service=service)
            assert service.budget.in_use == 0
            await server.start()
            held = service.budget.in_use
            await client.post_repair(HOST, server.port, payload_for(cases[0]))
            await server.stop()
            return held

        held = run(scenario())
        assert held == 3  # the lifetime worker-pool lease while serving
        assert service.budget.in_use == 0  # fully released after stop()

    def test_stop_after_load_releases_even_with_queued_work(
            self, cases, service, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            server = RepairServer(host=HOST, port=0, workers=1,
                                  executor_service=service)
            await server.start()
            for index, case in enumerate(cases):
                response = await client.post_repair(
                    HOST, server.port, payload_for(case, wait=False))
                assert response.status == 202
            gate.release.set()
            await server.stop()
            return server

        server = run(scenario())
        assert service.budget.in_use == 0
        outcomes = {job.status for job in server._jobs.values()}
        assert outcomes <= {"done", "cancelled"}
        assert server.counters.completed + server.counters.cancelled == \
            len(cases)

    def test_stop_is_idempotent(self, service):
        async def scenario():
            server = RepairServer(host=HOST, port=0,
                                  executor_service=service)
            await server.start()
            await server.stop()
            await server.stop()

        run(scenario())
        assert service.budget.in_use == 0
