"""End-to-end server tests: one in-process asyncio server per scenario.

No pytest-asyncio in the toolchain: every test is a sync function running
its scenario under ``asyncio.run``.  Controllable executions come from
monkeypatching ``repro.service.jobs.execute_repair`` (the server resolves
it through the module at submit time).
"""

import asyncio
import contextlib
import json
import threading

import pytest

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import Campaign, ResultCache
from repro.engine.pool import CoreBudget, ExecutorService
from repro.service import client, jobs
from repro.service.server import RepairServer

SEED = 5
HOST = "127.0.0.1"


@pytest.fixture(scope="module")
def cases():
    return list(load_dataset())[:3]


def payload_for(case, **extra) -> dict:
    payload = {"source": case.source, "engine": "rustbrain?kb=off",
               "seed": SEED, "name": case.name,
               "difficulty": case.difficulty,
               "category": case.category.value,
               "reference_source": case.fixed_source}
    payload.update(extra)
    return payload


@contextlib.asynccontextmanager
async def running_server(**kwargs):
    server = RepairServer(host=HOST, port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


def run(coroutine, timeout=60):
    async def bounded():
        return await asyncio.wait_for(coroutine, timeout)
    return asyncio.run(bounded())


class _Gate:
    """Monkeypatch target: holds executions until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = []
        self._real = jobs.execute_repair

    def __call__(self, config, *, cache=None, observer=None):
        self.started.append(config.request.name)
        assert self.release.wait(timeout=30), "gate never released"
        return self._real(config, cache=cache, observer=observer)


class TestRoundTrip:
    def test_reports_byte_identical_to_batch_campaign(self, cases):
        campaign = Campaign(["rustbrain?kb=off"], Dataset(tuple(cases)),
                            seed=SEED, executor="serial").run()
        batch = [report.to_dict() for report in campaign.arms[0].reports]

        async def scenario():
            served = []
            async with running_server() as server:
                for index, case in enumerate(cases):
                    response = await client.post_repair(
                        HOST, server.port, payload_for(case, index=index))
                    assert response.status == 200, response.json()
                    body = response.json()
                    assert body["status"] == "done"
                    served.append(body["report"])
            return served

        served = run(scenario())
        assert json.dumps(served, sort_keys=True) == \
            json.dumps(batch, sort_keys=True)

    def test_health_and_stats(self, cases):
        async def scenario():
            async with running_server() as server:
                health = await client.get_json(HOST, server.port, "/healthz")
                assert health.json() == {"status": "ok"}
                await client.post_repair(HOST, server.port,
                                         payload_for(cases[0]))
                stats = (await client.get_json(HOST, server.port,
                                               "/stats")).json()
            return stats

        stats = run(scenario())
        assert stats["counters"]["received"] == 1
        assert stats["counters"]["completed"] == 1
        assert stats["queue"] == {"depth": 0, "running": 0,
                                  "jobs_tracked": 1}
        assert stats["coalescing"]["hit_rate"] == 0.0
        assert set(stats["detector"]) == {"requests", "runs", "compiles",
                                          "vm_runs", "fingerprint_hits",
                                          "case_memo_hits"}
        assert set(stats["case_memo"]) == {"entries", "limit", "enabled"}
        assert stats["budget"]["in_use"] >= 1  # the server's own lease

    def test_cache_tier_shared_with_batch_path(self, cases, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        case = cases[0]
        Campaign(["rustbrain?kb=off"], Dataset((case,)), seed=SEED,
                 executor="serial", cache=cache).run()

        async def scenario():
            async with running_server(cache=cache) as server:
                response = await client.post_repair(HOST, server.port,
                                                    payload_for(case))
                stats = (await client.get_json(HOST, server.port,
                                               "/stats")).json()
            return response.json(), stats

        body, stats = run(scenario())
        assert body["cache_hit"] is True
        assert stats["cache"]["hits"] >= 1

    def test_poll_mode_and_job_endpoint(self, cases):
        async def scenario():
            async with running_server() as server:
                accepted = await client.post_repair(
                    HOST, server.port, payload_for(cases[0], wait=False))
                assert accepted.status == 202
                job_id = accepted.json()["id"]
                for _ in range(200):
                    state = (await client.get_json(
                        HOST, server.port, f"/repair/{job_id}")).json()
                    if state["status"] == "done":
                        return state
                    await asyncio.sleep(0.02)
                raise AssertionError("job never finished")

        state = run(scenario())
        assert state["report"]["case"] == cases[0].name
        assert state["error"] is None


class TestCoalescing:
    def test_duplicate_inflight_requests_share_one_execution(
            self, cases, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)
        payload = payload_for(cases[0])

        async def scenario():
            async with running_server() as server:
                leader = asyncio.create_task(
                    client.post_repair(HOST, server.port, payload))
                while not gate.started:  # leader admitted and running
                    await asyncio.sleep(0.01)
                follower = asyncio.create_task(
                    client.post_repair(HOST, server.port, payload))
                while server.counters.coalesced < 1:
                    await asyncio.sleep(0.01)
                gate.release.set()
                first = (await leader).json()
                second = (await follower).json()
                stats = (await client.get_json(HOST, server.port,
                                               "/stats")).json()
            return first, second, stats

        first, second, stats = run(scenario())
        assert len(gate.started) == 1  # one execution for two requests
        assert first["id"] == second["id"]
        assert first["coalesced"] is False and second["coalesced"] is True
        assert first["report"] == second["report"]
        assert stats["coalescing"] == {"attached": 1, "executions": 1,
                                       "hit_rate": 0.5}

    def test_different_requests_do_not_coalesce(self, cases, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            async with running_server() as server:
                first = await client.post_repair(
                    HOST, server.port, payload_for(cases[0], wait=False))
                second = await client.post_repair(
                    HOST, server.port,
                    payload_for(cases[0], seed=SEED + 1, wait=False))
                gate.release.set()
                return first.json(), second.json(), server

        first, second, _server = run(scenario())
        assert first["id"] != second["id"]

    def test_events_stream_live_and_terminate(self, cases, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            async with running_server() as server:
                accepted = await client.post_repair(
                    HOST, server.port, payload_for(cases[0], wait=False))
                job_id = accepted.json()["id"]
                # Attach the SSE reader while the job is still gated.
                stream = asyncio.create_task(client.read_sse(
                    HOST, server.port, f"/repair/{job_id}/events"))
                await asyncio.sleep(0.05)
                assert not stream.done()
                gate.release.set()
                return await stream

        frames = run(scenario())
        names = [name for name, _data in frames]
        assert names[0] == "engine_started"
        assert "case_finished" in names
        assert names[-1] == "job_finished"
        assert frames[-1][1]["status"] == "done"


class TestAdmission:
    def test_rate_limit_answers_429_with_retry_after(self, cases):
        async def scenario():
            async with running_server(rate=0.001, burst=1) as server:
                first = await client.post_repair(
                    HOST, server.port, payload_for(cases[0]),
                    client_id="impatient")
                second = await client.post_repair(
                    HOST, server.port, payload_for(cases[0]),
                    client_id="impatient")
                third = await client.post_repair(
                    HOST, server.port, payload_for(cases[0]),
                    client_id="someone-else")
            return first, second, third

        first, second, third = run(scenario())
        assert first.status == 200
        assert second.status == 429
        assert int(second.retry_after) >= 1
        assert "rate limit" in second.json()["error"]
        assert third.status == 200  # distinct client, own bucket

    def test_queue_overflow_answers_503_with_retry_after(
            self, cases, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)
        service = ExecutorService(budget=CoreBudget(4))

        async def scenario():
            try:
                async with running_server(workers=1, max_queue=1,
                                          executor_service=service) as server:
                    running = await client.post_repair(
                        HOST, server.port,
                        payload_for(cases[0], wait=False))
                    queued = await client.post_repair(
                        HOST, server.port,
                        payload_for(cases[1], wait=False))
                    rejected = await client.post_repair(
                        HOST, server.port,
                        payload_for(cases[2], wait=False))
                    gate.release.set()
                    return running, queued, rejected
            finally:
                service.shutdown()

        running, queued, rejected = run(scenario())
        assert running.status == 202 and queued.status == 202
        assert rejected.status == 503
        assert int(rejected.retry_after) >= 1
        assert "queue full" in rejected.json()["error"]

    def test_request_deadline_answers_504_and_job_continues(
            self, cases, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(jobs, "execute_repair", gate)

        async def scenario():
            async with running_server() as server:
                response = await client.post_repair(
                    HOST, server.port,
                    payload_for(cases[0], timeout_seconds=0.05))
                assert response.status == 504
                job_id = response.json()["error"].rsplit("/", 1)[-1]
                gate.release.set()
                for _ in range(200):
                    state = (await client.get_json(
                        HOST, server.port, f"/repair/{job_id}")).json()
                    if state["status"] == "done":
                        return response, state
                    await asyncio.sleep(0.02)
                raise AssertionError("job never finished after deadline")

        response, state = run(scenario())
        assert "deadline" in response.json()["error"]
        assert state["report"] is not None


class TestProtocolErrors:
    def test_http_error_surface(self, cases):
        async def scenario():
            async with running_server() as server:
                port = server.port
                results = {}
                results["bad_json"] = await client.request(
                    HOST, port, "POST", "/repair", payload="not json")
                results["bad_payload"] = await client.post_repair(
                    HOST, port, {"source": "fn main() {}",
                                 "engine": "no_such_engine"})
                results["unknown_job"] = await client.get_json(
                    HOST, port, "/repair/j999999")
                results["unknown_route"] = await client.get_json(
                    HOST, port, "/nope")
                results["wrong_method"] = await client.request(
                    HOST, port, "GET", "/repair")
                results["failed_job"] = None
            return results

        results = run(scenario())
        assert results["bad_json"].status == 400
        assert results["bad_payload"].status == 400
        assert "no_such_engine" in results["bad_payload"].json()["error"]
        assert results["unknown_job"].status == 404
        assert results["unknown_route"].status == 404
        assert results["wrong_method"].status == 405

    def test_worker_exception_surfaces_as_500(self, cases, monkeypatch):
        def explode(config, *, cache=None, observer=None):
            raise RuntimeError("engine fell over")

        monkeypatch.setattr(jobs, "execute_repair", explode)

        async def scenario():
            async with running_server() as server:
                return await client.post_repair(HOST, server.port,
                                                payload_for(cases[0]))

        response = run(scenario())
        assert response.status == 500
        body = response.json()
        assert body["status"] == "failed"
        assert "engine fell over" in body["error"]


class TestCircuitBreaker:
    def test_breaker_trips_probes_and_recovers(self, cases, monkeypatch):
        # Deterministic transcript: N failures trip the breaker (503 +
        # Retry-After), the reset window elapses, a failing probe
        # re-opens, a succeeding probe closes it again.
        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        healthy = threading.Event()
        real = jobs.execute_repair

        def flaky(config, *, cache=None, observer=None):
            if not healthy.is_set():
                raise RuntimeError("engine down")
            return real(config, cache=cache, observer=observer)

        monkeypatch.setattr(jobs, "execute_repair", flaky)

        async def scenario():
            transcript = []
            async with running_server(breaker_threshold=2,
                                      breaker_reset_seconds=5.0,
                                      rate=0, clock=clock) as server:
                async def post(index):
                    response = await client.post_repair(
                        HOST, server.port, payload_for(cases[0], index=index))
                    transcript.append(response.status)
                    return response

                await post(0)            # failure 1 of 2
                await post(1)            # failure 2 -> breaker opens
                rejected = await post(2)
                assert rejected.retry_after is not None
                clock.now = 5.0          # window elapses -> half-open
                await post(3)            # failing probe -> re-opens
                await post(4)            # still open
                clock.now = 10.0
                healthy.set()
                await post(5)            # succeeding probe -> closed
                await post(6)            # flows normally again
                stats = (await client.get_json(HOST, server.port,
                                               "/stats")).json()
            return transcript, stats

        transcript, stats = run(scenario())
        assert transcript == [500, 500, 503, 500, 503, 200, 200]
        assert stats["breaker"]["state"] == "closed"
        assert stats["counters"]["rejected_breaker"] == 2
        assert stats["counters"]["failed"] == 3
        assert stats["drain"]["observed_jobs"] == 2
