"""Unit tests for the mini-Rust parser."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse_expr, parse_program
from repro.lang import types as ty


class TestItems:
    def test_empty_main(self):
        prog = parse_program("fn main() {}")
        assert len(prog.items) == 1
        main = prog.fn("main")
        assert main is not None
        assert not main.is_unsafe
        assert main.params == []
        assert main.ret is None

    def test_unsafe_fn(self):
        prog = parse_program("unsafe fn danger(p: *const i32) -> i32 { *p }")
        func = prog.fn("danger")
        assert func.is_unsafe
        assert isinstance(func.params[0].ty, ty.TyRawPtr)
        assert func.ret == ty.I32
        assert isinstance(func.body.tail, ast.Unary)

    def test_static_mut(self):
        prog = parse_program("static mut G: usize = 0;")
        item = prog.items[0]
        assert isinstance(item, ast.StaticItem)
        assert item.mutable
        assert item.ty == ty.USIZE

    def test_const_item(self):
        prog = parse_program("const N: usize = 16;")
        item = prog.items[0]
        assert isinstance(item, ast.ConstItem)
        assert item.name == "N"

    def test_struct_item(self):
        prog = parse_program("struct Point { x: i32, y: i32 }")
        item = prog.items[0]
        assert isinstance(item, ast.StructItem)
        assert item.fields == [("x", ty.I32), ("y", ty.I32)]

    def test_union_item(self):
        prog = parse_program("union Bits { i: i32, u: u32 }")
        item = prog.items[0]
        assert isinstance(item, ast.UnionItem)
        assert len(item.fields) == 2

    def test_use_item_ignored_semantically(self):
        prog = parse_program("use std::mem;\nfn main() {}")
        assert isinstance(prog.items[0], ast.UseItem)
        assert prog.items[0].path == "std::mem"

    def test_attribute_skipped(self):
        prog = parse_program("#[allow(dead_code)]\nfn main() {}")
        assert prog.fn("main") is not None

    def test_nested_fn_rejected(self):
        with pytest.raises(ParseError):
            parse_program("fn main() { fn inner() {} }")


class TestTypes:
    def parse_let_type(self, type_text):
        prog = parse_program(f"fn main() {{ let x: {type_text}; }}")
        stmt = prog.fn("main").body.stmts[0]
        return stmt.ty

    def test_primitives(self):
        assert self.parse_let_type("i32") == ty.I32
        assert self.parse_let_type("u8") == ty.U8
        assert self.parse_let_type("usize") == ty.USIZE
        assert self.parse_let_type("bool") == ty.BOOL

    def test_reference_types(self):
        assert self.parse_let_type("&i32") == ty.TyRef(ty.I32, False)
        assert self.parse_let_type("&mut i32") == ty.TyRef(ty.I32, True)

    def test_raw_pointer_types(self):
        assert self.parse_let_type("*const i32") == ty.TyRawPtr(ty.I32, False)
        assert self.parse_let_type("*mut u8") == ty.TyRawPtr(ty.U8, True)

    def test_array_type(self):
        assert self.parse_let_type("[u8; 4]") == ty.TyArray(ty.U8, 4)

    def test_slice_ref(self):
        assert self.parse_let_type("&[u8]") == ty.TyRef(ty.TySlice(ty.U8), False)

    def test_tuple_type(self):
        assert self.parse_let_type("(i32, bool)") == ty.TyTuple((ty.I32, ty.BOOL))

    def test_unit_type(self):
        assert self.parse_let_type("()") == ty.UNIT

    def test_generic_path(self):
        assert self.parse_let_type("Vec<i32>") == ty.TyPath("Vec", (ty.I32,))

    def test_nested_generics_shr_split(self):
        parsed = self.parse_let_type("Vec<Vec<i32>>")
        assert parsed == ty.TyPath("Vec", (ty.TyPath("Vec", (ty.I32,)),))

    def test_fn_pointer_type(self):
        parsed = self.parse_let_type("fn(i32) -> i32")
        assert parsed == ty.TyFn((ty.I32,), ty.I32)

    def test_unsafe_fn_pointer_type(self):
        parsed = self.parse_let_type("unsafe fn()")
        assert parsed == ty.TyFn((), ty.UNIT, is_unsafe=True)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.op == "*"

    def test_parens_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Binary)

    def test_comparison_chain(self):
        expr = parse_expr("a < b && c >= d")
        assert expr.op == "&&"

    def test_cast_binds_tighter_than_add(self):
        expr = parse_expr("x as usize + 1")
        assert isinstance(expr, ast.Binary)
        assert isinstance(expr.left, ast.Cast)

    def test_chained_casts(self):
        expr = parse_expr("p as *const i32 as usize")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.expr, ast.Cast)

    def test_unary_deref(self):
        expr = parse_expr("*p + 1")
        assert isinstance(expr.left, ast.Unary)
        assert expr.left.op == "*"

    def test_double_reference(self):
        expr = parse_expr("&&x")
        assert isinstance(expr, ast.Unary)
        assert isinstance(expr.operand, ast.Unary)

    def test_mut_borrow(self):
        expr = parse_expr("&mut x")
        assert expr.op == "&mut"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assign(self):
        expr = parse_expr("x += 1")
        assert isinstance(expr, ast.CompoundAssign)
        assert expr.op == "+"

    def test_turbofish_path(self):
        expr = parse_expr("mem::transmute::<&i32, usize>(p)")
        assert isinstance(expr, ast.Call)
        func = expr.func
        assert isinstance(func, ast.PathExpr)
        assert func.segments == ["mem", "transmute"]
        assert len(func.generic_args) == 2

    def test_associated_fn_path(self):
        expr = parse_expr("u32::from_le_bytes(n1)")
        assert isinstance(expr, ast.Call)
        assert expr.func.segments == ["u32", "from_le_bytes"]

    def test_method_call(self):
        expr = parse_expr("v.push(1)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "push"

    def test_method_chain(self):
        expr = parse_expr("v.as_ptr().offset(1)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "offset"
        assert isinstance(expr.receiver, ast.MethodCall)

    def test_method_turbofish(self):
        expr = parse_expr("p.cast::<u8>()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.generic_args == [ty.U8]

    def test_field_access_and_tuple_index(self):
        expr = parse_expr("pt.x")
        assert isinstance(expr, ast.FieldAccess)
        expr2 = parse_expr("t.0")
        assert expr2.field == "0"

    def test_index(self):
        expr = parse_expr("arr[i + 1]")
        assert isinstance(expr, ast.Index)

    def test_range(self):
        expr = parse_expr("0..10")
        assert isinstance(expr, ast.RangeExpr)
        assert not expr.inclusive
        expr2 = parse_expr("0..=10")
        assert expr2.inclusive

    def test_array_literal_and_repeat(self):
        lit = parse_expr("[1, 2, 3]")
        assert isinstance(lit, ast.ArrayLit)
        rep = parse_expr("[0u8; 16]")
        assert isinstance(rep, ast.ArrayRepeat)

    def test_tuple_literal(self):
        t = parse_expr("(1, 2)")
        assert isinstance(t, ast.TupleLit)
        unit = parse_expr("()")
        assert isinstance(unit, ast.TupleLit)
        assert unit.elems == []

    def test_single_paren_not_tuple(self):
        e = parse_expr("(1)")
        assert isinstance(e, ast.IntLit)

    def test_macro_assert(self):
        m = parse_expr('assert!(x > 0, "msg")')
        assert isinstance(m, ast.MacroCall)
        assert m.name == "assert"
        assert len(m.args) == 2

    def test_macro_vec(self):
        m = parse_expr("vec![1, 2, 3]")
        assert m.name == "vec"
        assert len(m.args) == 3

    def test_closure_zero_params(self):
        c = parse_expr("|| 42")
        assert isinstance(c, ast.Closure)
        assert c.params == []
        assert not c.is_move

    def test_move_closure(self):
        c = parse_expr("move || { x + 1 }")
        assert c.is_move
        assert isinstance(c.body, ast.Block)

    def test_closure_with_params(self):
        c = parse_expr("|a, b| a + b")
        assert c.params == ["a", "b"]


class TestControlFlow:
    def test_if_else_chain(self):
        # A trailing block-like expression becomes the block tail (as in Rust).
        prog = parse_program(
            "fn main() { if a { } else if b { } else { } }"
        )
        if_expr = prog.fn("main").body.tail
        assert isinstance(if_expr, ast.IfExpr)
        assert isinstance(if_expr.else_block, ast.IfExpr)
        assert isinstance(if_expr.else_block.else_block, ast.Block)

    def test_if_as_tail_expression(self):
        prog = parse_program("fn f() -> i32 { if a { 1 } else { 2 } }")
        assert isinstance(prog.fn("f").body.tail, ast.IfExpr)

    def test_while_loop(self):
        prog = parse_program("fn main() { while x < 10 { x += 1; } }")
        assert isinstance(prog.fn("main").body.tail, ast.WhileExpr)

    def test_while_followed_by_stmt_is_statement(self):
        prog = parse_program("fn main() { while x { } let y = 1; }")
        stmt = prog.fn("main").body.stmts[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.WhileExpr)
        assert not stmt.has_semi

    def test_for_over_range(self):
        prog = parse_program("fn main() { for i in 0..n { } }")
        for_expr = prog.fn("main").body.tail
        assert isinstance(for_expr, ast.ForExpr)
        assert isinstance(for_expr.iterable, ast.RangeExpr)

    def test_no_struct_literal_in_condition(self):
        # `if x { }` where x could begin a struct literal must parse as path.
        prog = parse_program("fn main() { if Foo { } }")
        cond = prog.fn("main").body.tail.cond
        assert isinstance(cond, ast.PathExpr)

    def test_struct_literal_in_let(self):
        prog = parse_program("fn main() { let p = Point { x: 1, y: 2 }; }")
        init = prog.fn("main").body.stmts[0].init
        assert isinstance(init, ast.StructLit)

    def test_unsafe_block(self):
        prog = parse_program("fn main() { unsafe { *p; } }")
        block = prog.fn("main").body.tail
        assert isinstance(block, ast.Block)
        assert block.is_unsafe

    def test_loop_with_break(self):
        prog = parse_program("fn main() { loop { break; } }")
        assert isinstance(prog.fn("main").body.tail, ast.LoopExpr)

    def test_tail_expression(self):
        prog = parse_program("fn f() -> i32 { let x = 1; x + 1 }")
        body = prog.fn("f").body
        assert len(body.stmts) == 1
        assert isinstance(body.tail, ast.Binary)

    def test_return_with_value(self):
        prog = parse_program("fn f() -> i32 { return 3; }")
        ret = prog.fn("f").body.stmts[0].expr
        assert isinstance(ret, ast.ReturnExpr)
        assert ret.value.value == 3


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("fn main() { let x = 1 let y = 2; }")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_program("fn main() {")

    def test_bad_raw_pointer(self):
        with pytest.raises(ParseError):
            parse_program("fn main() { let p: *i32; }")

    def test_error_carries_span(self):
        with pytest.raises(ParseError) as err:
            parse_program("fn main() { let = 3; }")
        assert err.value.span.line == 1


class TestNodeInfrastructure:
    def test_node_ids_unique(self):
        prog = parse_program("fn main() { let x = 1 + 2; let y = x; }")
        ids = [n.node_id for n in ast.walk(prog)]
        assert len(ids) == len(set(ids))

    def test_find_by_id(self):
        prog = parse_program("fn main() { let x = 42; }")
        lit = prog.fn("main").body.stmts[0].init
        assert prog.find(lit.node_id) is lit

    def test_clone_assigns_fresh_ids(self):
        prog = parse_program("fn main() { let x = 1; }")
        dup = ast.clone(prog)
        original_ids = {n.node_id for n in ast.walk(prog)}
        cloned_ids = {n.node_id for n in ast.walk(dup)}
        assert original_ids.isdisjoint(cloned_ids)

    def test_parent_map(self):
        prog = parse_program("fn main() { let x = 1 + 2; }")
        parents = ast.parent_map(prog)
        binary = prog.fn("main").body.stmts[0].init
        assert parents[binary.left.node_id] is binary


class TestParseMemoization:
    """parse_program is memoized on source; callers stay fully isolated."""

    def test_repeat_parse_equal_structure(self):
        from repro.lang.printer import print_program
        src = "fn main() { let x = 1 + 2; let y = x; }"
        first = parse_program(src)
        second = parse_program(src)
        assert first is not second
        assert print_program(first) == print_program(second)

    def test_repeat_parse_fresh_node_ids(self):
        src = "fn main() { let x = 1; }"
        first = parse_program(src)
        second = parse_program(src)
        first_ids = {n.node_id for n in ast.walk(first)}
        second_ids = {n.node_id for n in ast.walk(second)}
        assert first_ids.isdisjoint(second_ids)

    def test_mutation_never_leaks_between_parses(self):
        from repro.lang.printer import print_program
        src = "fn main() { let x = 1; let y = 2; }"
        reference = print_program(parse_program(src))
        mutated = parse_program(src)
        mutated.fn("main").body.stmts.pop()  # engines rewrite in place
        assert print_program(parse_program(src)) == reference

    def test_cache_actually_hits(self):
        from repro.lang.parser import _parse_program_cached
        src = "fn main() { let memo_probe = 9; }"
        before = _parse_program_cached.cache_info().hits
        parse_program(src)
        parse_program(src)
        assert _parse_program_cached.cache_info().hits > before

    def test_parse_errors_not_cached_as_results(self):
        for _ in range(2):
            with pytest.raises(ParseError):
                parse_program("fn main() { let = 3; }")
