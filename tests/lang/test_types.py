"""Layout and integer-semantics tests for the type model."""

import pytest

from repro.lang import types as ty


class TestIntSemantics:
    def test_ranges(self):
        assert ty.I8.min_value == -128
        assert ty.I8.max_value == 127
        assert ty.U8.min_value == 0
        assert ty.U8.max_value == 255
        assert ty.I32.max_value == 2**31 - 1
        assert ty.USIZE.max_value == 2**64 - 1

    def test_wrap_unsigned(self):
        assert ty.U8.wrap(256) == 0
        assert ty.U8.wrap(257) == 1
        assert ty.U8.wrap(-1) == 255

    def test_wrap_signed(self):
        assert ty.I8.wrap(128) == -128
        assert ty.I8.wrap(-129) == 127
        assert ty.I32.wrap(2**31) == -(2**31)

    def test_in_range(self):
        assert ty.I8.in_range(127)
        assert not ty.I8.in_range(128)
        assert not ty.U8.in_range(-1)

    def test_names(self):
        assert ty.USIZE.name == "usize"
        assert ty.ISIZE.name == "isize"
        assert ty.I32.name == "i32"


class TestLayout:
    def test_scalar_sizes(self):
        assert ty.size_of(ty.I8) == 1
        assert ty.size_of(ty.I32) == 4
        assert ty.size_of(ty.U64) == 8
        assert ty.size_of(ty.BOOL) == 1
        assert ty.size_of(ty.CHAR) == 4
        assert ty.size_of(ty.UNIT) == 0

    def test_pointer_sizes(self):
        assert ty.size_of(ty.TyRef(ty.I32, False)) == 8
        assert ty.size_of(ty.TyRawPtr(ty.U8, True)) == 8
        assert ty.size_of(ty.TyFn((), ty.UNIT)) == 8

    def test_fat_pointer(self):
        assert ty.size_of(ty.TyRef(ty.TySlice(ty.U8), False)) == 16

    def test_array_layout(self):
        arr = ty.TyArray(ty.I32, 4)
        assert ty.size_of(arr) == 16
        assert ty.align_of(arr) == 4

    def test_tuple_padding(self):
        # (u8, u32) pads to alignment 4 → size 8.
        tup = ty.TyTuple((ty.U8, ty.U32))
        assert ty.size_of(tup) == 8
        assert ty.align_of(tup) == 4

    def test_vec_is_three_words(self):
        assert ty.size_of(ty.TyPath("Vec", (ty.I32,))) == 24

    def test_box_is_one_word(self):
        assert ty.size_of(ty.TyPath("Box", (ty.I64,))) == 8

    def test_maybe_uninit_matches_inner(self):
        assert ty.size_of(ty.TyPath("MaybeUninit", (ty.U16,))) == 2
        assert ty.align_of(ty.TyPath("MaybeUninit", (ty.U16,))) == 2

    def test_option_niche(self):
        opt_ref = ty.TyPath("Option", (ty.TyRef(ty.I32, False),))
        assert ty.size_of(opt_ref) == 8

    def test_unknown_named_type_raises(self):
        with pytest.raises(ty.LayoutError):
            ty.size_of(ty.TyPath("Mystery"))


class TestStructLayout:
    def test_struct_field_offsets(self):
        layout = ty.StructLayout.for_struct(
            "S", [("a", ty.U8), ("b", ty.U32), ("c", ty.U8)]
        )
        assert layout.field_offsets == (0, 4, 8)
        assert layout.size == 12
        assert layout.align == 4

    def test_union_layout_overlaps(self):
        layout = ty.StructLayout.for_union("U", [("i", ty.I32), ("b", ty.U8)])
        assert layout.field_offsets == (0, 0)
        assert layout.size == 4
        assert layout.is_union

    def test_offset_and_type_lookup(self):
        layout = ty.StructLayout.for_struct("S", [("x", ty.I32), ("y", ty.I64)])
        assert layout.offset_of("y") == 8
        assert layout.type_of("x") == ty.I32

    def test_nested_struct_layout(self):
        inner = ty.StructLayout.for_struct("Inner", [("v", ty.I64)])
        table = {"Inner": inner}
        outer = ty.StructLayout.for_struct(
            "Outer", [("a", ty.U8), ("b", ty.TyPath("Inner"))], table
        )
        assert outer.field_offsets == (0, 8)
        assert outer.size == 16

    def test_type_str_rendering(self):
        assert str(ty.TyRef(ty.I32, True)) == "&mut i32"
        assert str(ty.TyRawPtr(ty.U8, False)) == "*const u8"
        assert str(ty.TyArray(ty.U8, 3)) == "[u8; 3]"
        assert str(ty.TyPath("Vec", (ty.I32,))) == "Vec<i32>"
        assert str(ty.TyTuple((ty.I32,))) == "(i32,)"
        assert str(ty.TyFn((ty.I32,), ty.I32)) == "fn(i32) -> i32"


class TestInferAndNever:
    def test_rendering(self):
        assert str(ty.INFER) == "_"
        assert str(ty.NEVER) == "!"
        assert str(ty.TyPath("Vec", (ty.INFER,))) == "Vec<_>"

    def test_singletons_compare_equal(self):
        assert ty.TyInfer() == ty.INFER
        assert ty.TyNever() == ty.NEVER
        assert ty.INFER != ty.NEVER

    def test_contains_infer_direct_and_nested(self):
        assert ty.contains_infer(ty.INFER)
        assert ty.contains_infer(ty.TyPath("Vec", (ty.INFER,)))
        assert ty.contains_infer(ty.TyRef(ty.INFER, False))
        assert ty.contains_infer(ty.TyTuple((ty.I32, ty.INFER)))
        assert ty.contains_infer(ty.TyArray(ty.INFER, 3))
        assert ty.contains_infer(ty.TyFn((ty.INFER,), ty.I32))
        assert ty.contains_infer(ty.TyFn((), ty.INFER))
        assert not ty.contains_infer(ty.I32)
        assert not ty.contains_infer(ty.TyPath("Vec", (ty.I32,)))
        assert not ty.contains_infer(ty.NEVER)

    def test_normalize_empty_tuple_is_unit(self):
        assert ty.normalize(ty.TyTuple(())) == ty.UNIT
        assert ty.normalize(ty.TyRef(ty.TyTuple(()), False)) \
            == ty.TyRef(ty.UNIT, False)
        assert ty.normalize(ty.TyPath("Vec", (ty.TyTuple(()),))) \
            == ty.TyPath("Vec", (ty.UNIT,))

    def test_normalize_is_identity_on_concrete_types(self):
        for t in (ty.I32, ty.BOOL, ty.NEVER, ty.INFER,
                  ty.TyRef(ty.I32, True), ty.TyArray(ty.U8, 2)):
            assert ty.normalize(t) == t

    def test_is_copy_conservative(self):
        assert ty.is_copy(ty.I32)
        assert ty.is_copy(ty.BOOL)
        assert ty.is_copy(ty.INFER)
        assert ty.is_copy(ty.NEVER)
        assert ty.is_copy(ty.TyRef(ty.TyPath("Vec", (ty.I32,)), False))
        assert ty.is_copy(ty.TyRawPtr(ty.U8, True))
        assert not ty.is_copy(ty.TyPath("Vec", (ty.I32,)))
        assert not ty.is_copy(ty.TyPath("Box", (ty.I32,)))
        assert not ty.is_copy(ty.TyPath("String"))
        # unknown named types err toward Copy (no false moves)
        assert ty.is_copy(ty.TyPath("Mystery"))

    def test_is_copy_through_aggregates(self):
        assert ty.is_copy(ty.TyTuple((ty.I32, ty.BOOL)))
        assert not ty.is_copy(ty.TyTuple((ty.I32,
                                          ty.TyPath("Vec", (ty.I32,)))))
        assert not ty.is_copy(ty.TyArray(ty.TyPath("Box", (ty.U8,)), 2))
