"""Layout and integer-semantics tests for the type model."""

import pytest

from repro.lang import types as ty


class TestIntSemantics:
    def test_ranges(self):
        assert ty.I8.min_value == -128
        assert ty.I8.max_value == 127
        assert ty.U8.min_value == 0
        assert ty.U8.max_value == 255
        assert ty.I32.max_value == 2**31 - 1
        assert ty.USIZE.max_value == 2**64 - 1

    def test_wrap_unsigned(self):
        assert ty.U8.wrap(256) == 0
        assert ty.U8.wrap(257) == 1
        assert ty.U8.wrap(-1) == 255

    def test_wrap_signed(self):
        assert ty.I8.wrap(128) == -128
        assert ty.I8.wrap(-129) == 127
        assert ty.I32.wrap(2**31) == -(2**31)

    def test_in_range(self):
        assert ty.I8.in_range(127)
        assert not ty.I8.in_range(128)
        assert not ty.U8.in_range(-1)

    def test_names(self):
        assert ty.USIZE.name == "usize"
        assert ty.ISIZE.name == "isize"
        assert ty.I32.name == "i32"


class TestLayout:
    def test_scalar_sizes(self):
        assert ty.size_of(ty.I8) == 1
        assert ty.size_of(ty.I32) == 4
        assert ty.size_of(ty.U64) == 8
        assert ty.size_of(ty.BOOL) == 1
        assert ty.size_of(ty.CHAR) == 4
        assert ty.size_of(ty.UNIT) == 0

    def test_pointer_sizes(self):
        assert ty.size_of(ty.TyRef(ty.I32, False)) == 8
        assert ty.size_of(ty.TyRawPtr(ty.U8, True)) == 8
        assert ty.size_of(ty.TyFn((), ty.UNIT)) == 8

    def test_fat_pointer(self):
        assert ty.size_of(ty.TyRef(ty.TySlice(ty.U8), False)) == 16

    def test_array_layout(self):
        arr = ty.TyArray(ty.I32, 4)
        assert ty.size_of(arr) == 16
        assert ty.align_of(arr) == 4

    def test_tuple_padding(self):
        # (u8, u32) pads to alignment 4 → size 8.
        tup = ty.TyTuple((ty.U8, ty.U32))
        assert ty.size_of(tup) == 8
        assert ty.align_of(tup) == 4

    def test_vec_is_three_words(self):
        assert ty.size_of(ty.TyPath("Vec", (ty.I32,))) == 24

    def test_box_is_one_word(self):
        assert ty.size_of(ty.TyPath("Box", (ty.I64,))) == 8

    def test_maybe_uninit_matches_inner(self):
        assert ty.size_of(ty.TyPath("MaybeUninit", (ty.U16,))) == 2
        assert ty.align_of(ty.TyPath("MaybeUninit", (ty.U16,))) == 2

    def test_option_niche(self):
        opt_ref = ty.TyPath("Option", (ty.TyRef(ty.I32, False),))
        assert ty.size_of(opt_ref) == 8

    def test_unknown_named_type_raises(self):
        with pytest.raises(ty.LayoutError):
            ty.size_of(ty.TyPath("Mystery"))


class TestStructLayout:
    def test_struct_field_offsets(self):
        layout = ty.StructLayout.for_struct(
            "S", [("a", ty.U8), ("b", ty.U32), ("c", ty.U8)]
        )
        assert layout.field_offsets == (0, 4, 8)
        assert layout.size == 12
        assert layout.align == 4

    def test_union_layout_overlaps(self):
        layout = ty.StructLayout.for_union("U", [("i", ty.I32), ("b", ty.U8)])
        assert layout.field_offsets == (0, 0)
        assert layout.size == 4
        assert layout.is_union

    def test_offset_and_type_lookup(self):
        layout = ty.StructLayout.for_struct("S", [("x", ty.I32), ("y", ty.I64)])
        assert layout.offset_of("y") == 8
        assert layout.type_of("x") == ty.I32

    def test_nested_struct_layout(self):
        inner = ty.StructLayout.for_struct("Inner", [("v", ty.I64)])
        table = {"Inner": inner}
        outer = ty.StructLayout.for_struct(
            "Outer", [("a", ty.U8), ("b", ty.TyPath("Inner"))], table
        )
        assert outer.field_offsets == (0, 8)
        assert outer.size == 16

    def test_type_str_rendering(self):
        assert str(ty.TyRef(ty.I32, True)) == "&mut i32"
        assert str(ty.TyRawPtr(ty.U8, False)) == "*const u8"
        assert str(ty.TyArray(ty.U8, 3)) == "[u8; 3]"
        assert str(ty.TyPath("Vec", (ty.I32,))) == "Vec<i32>"
        assert str(ty.TyTuple((ty.I32,))) == "(i32,)"
        assert str(ty.TyFn((ty.I32,), ty.I32)) == "fn(i32) -> i32"
