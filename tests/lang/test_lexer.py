"""Unit tests for the mini-Rust lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import TokenKind as T


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is T.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("let x fn unsafe") == [T.KW_LET, T.IDENT, T.KW_FN, T.KW_UNSAFE]

    def test_underscore_identifier(self):
        assert kinds("_foo _") == [T.IDENT, T.IDENT]

    def test_keyword_prefix_is_identifier(self):
        # `letter` must not lex as `let` + `ter`.
        assert texts("letter") == ["letter"]
        assert kinds("letter") == [T.IDENT]

    def test_punctuation_maximal_munch(self):
        assert kinds("::") == [T.COLONCOLON]
        assert kinds(":") == [T.COLON]
        assert kinds("->") == [T.ARROW]
        assert kinds("=>") == [T.FATARROW]
        assert kinds("..=") == [T.DOTDOTEQ]
        assert kinds("..") == [T.DOTDOT]
        assert kinds("<<=") == [T.SHLEQ]
        assert kinds("<<") == [T.SHL]
        assert kinds("&&") == [T.AMPAMP]
        assert kinds("& &") == [T.AMP, T.AMP]

    def test_compound_assignment_operators(self):
        assert kinds("+= -= *= /= %= ^= &= |=") == [
            T.PLUSEQ, T.MINUSEQ, T.STAREQ, T.SLASHEQ,
            T.PERCENTEQ, T.CARETEQ, T.AMPEQ, T.PIPEEQ,
        ]

    def test_comparison_operators(self):
        assert kinds("== != <= >= < >") == [T.EQEQ, T.NE, T.LE, T.GE, T.LT, T.GT]


class TestNumbers:
    def test_decimal(self):
        assert texts("42") == ["42"]
        assert kinds("42") == [T.INT]

    def test_decimal_with_underscores(self):
        assert texts("1_000_000") == ["1_000_000"]

    def test_hex(self):
        assert texts("0xff 0x17") == ["0xff", "0x17"]

    def test_binary(self):
        assert texts("0b1010") == ["0b1010"]

    def test_suffixed(self):
        assert texts("42usize 0xffu8 1i64 7u32") == ["42usize", "0xffu8", "1i64", "7u32"]

    def test_suffix_not_grabbed_from_identifier(self):
        # `42us` — `us` is not a valid suffix; lexer must split.
        toks = texts("42us")
        assert toks == ["42", "us"]


class TestStringsAndChars:
    def test_simple_string(self):
        assert texts('"hello"') == ['"hello"']
        assert kinds('"hello"') == [T.STRING]

    def test_string_with_escapes(self):
        assert texts(r'"a\"b\n"') == [r'"a\"b\n"']

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        assert kinds("'a'") == [T.CHAR]

    def test_char_escape(self):
        assert kinds(r"'\n'") == [T.CHAR]

    def test_lifetime(self):
        assert kinds("'static") == [T.LIFETIME]
        assert texts("'static") == ["'static"]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("1 // comment\n2") == [T.INT, T.INT]

    def test_block_comment_skipped(self):
        assert kinds("1 /* mid */ 2") == [T.INT, T.INT]

    def test_nested_block_comment(self):
        assert kinds("1 /* a /* b */ c */ 2") == [T.INT, T.INT]


class TestSpans:
    def test_line_and_column_tracking(self):
        toks = tokenize("let x\nlet y")
        assert toks[0].span.line == 1
        assert toks[2].span.line == 2
        assert toks[3].span.col == 5

    def test_unknown_character_raises_with_location(self):
        with pytest.raises(LexError) as err:
            tokenize("let $")
        assert err.value.line == 1


class TestRealisticSnippets:
    def test_transmute_turbofish(self):
        toks = kinds("mem::transmute::<&i32, usize>(p)")
        assert T.COLONCOLON in toks
        assert toks.count(T.COLONCOLON) == 2

    def test_unsafe_block(self):
        assert kinds("unsafe { *p }") == [
            T.KW_UNSAFE, T.LBRACE, T.STAR, T.IDENT, T.RBRACE,
        ]

    def test_attribute_tokens(self):
        assert kinds("#[derive(Debug)]")[0] is T.HASH
