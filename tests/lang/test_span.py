"""Tests for the span line/column helpers shared by parser errors and
checker diagnostics."""

from repro.lang.span import (DUMMY_SPAN, Span, line_col, render_snippet,
                             source_line, span_at)

SOURCE = "fn main() {\n    let total = count + 1;\n}\n"


class TestLineCol:
    def test_start_of_file(self):
        assert line_col(SOURCE, 0) == (1, 1)

    def test_second_line(self):
        offset = SOURCE.index("total")
        assert line_col(SOURCE, offset) == (2, 9)

    def test_offset_clamped(self):
        assert line_col(SOURCE, -5) == (1, 1)
        line, col = line_col(SOURCE, 10_000)
        assert line == SOURCE.count("\n") + 1

    def test_agrees_with_lexer_convention(self):
        # col counts from 1 at the character after the last newline
        offset = SOURCE.index("\n") + 1
        assert line_col(SOURCE, offset) == (2, 1)


class TestSpanAt:
    def test_builds_full_span(self):
        offset = SOURCE.index("count")
        span = span_at(SOURCE, offset, offset + 5)
        assert span == Span(offset, offset + 5, 2, 17)

    def test_end_defaults_to_start(self):
        span = span_at(SOURCE, 3)
        assert span.start == span.end == 3


class TestSourceLine:
    def test_returns_requested_line(self):
        assert source_line(SOURCE, 1) == "fn main() {"
        assert source_line(SOURCE, 2) == "    let total = count + 1;"

    def test_out_of_range_is_empty(self):
        assert source_line(SOURCE, 0) == ""
        assert source_line(SOURCE, 99) == ""


class TestRenderSnippet:
    def test_caret_under_span(self):
        offset = SOURCE.index("count")
        snippet = render_snippet(SOURCE, span_at(SOURCE, offset, offset + 5),
                                 "not found")
        lines = snippet.splitlines()
        assert lines[0] == "  --> 2:17"
        assert lines[2] == "2 |     let total = count + 1;"
        assert lines[3] == "  |                 ^^^^^ not found"

    def test_width_clipped_to_line_end(self):
        offset = SOURCE.index("count")
        snippet = render_snippet(SOURCE, span_at(SOURCE, offset, offset + 99))
        caret_line = snippet.splitlines()[3]
        assert caret_line.count("^") == len("count + 1;")

    def test_zero_width_span_still_carets(self):
        snippet = render_snippet(SOURCE, span_at(SOURCE, 0, 0))
        assert "^" in snippet

    def test_dummy_span_renders_location_only(self):
        assert render_snippet(SOURCE, DUMMY_SPAN) == "  --> 0:0"
