"""Property-based round-trip tests over lang's parser and printer.

Seeded stdlib ``random`` only (no extra dependencies): the corpus plus
500 generator-shaped mutant sources drive two properties —

* ``parse → canonical print`` reaches a **fixed point** after one round:
  printing a re-parse of the canonical text reproduces it byte-for-byte
  (this is what makes fingerprints and generated manifests stable);
* **spans survive one parse**: every node parsed from real text carries
  an in-bounds span that points at the construct it claims to
  (diagnostics depend on it; ``Param`` nodes are the one documented
  exception — the parser does not span them today, and the test pins
  that so a regression *or an improvement* shows up here).
"""

import pytest

from repro.corpus import generate_sources, load_dataset
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_program
from repro.lang.printer import print_program
from repro.lang.span import DUMMY_SPAN

SEED = 20260808
GENERATED_COUNT = 500


@pytest.fixture(scope="module")
def all_sources():
    sources = []
    for case in load_dataset():
        sources.append(case.source)
        sources.append(case.fixed_source)
    sources.extend(generate_sources(GENERATED_COUNT, seed=SEED))
    return sources


def test_corpus_of_sources_is_large_enough(all_sources):
    assert len(all_sources) >= GENERATED_COUNT + 2 * len(load_dataset())


def test_print_is_a_fixed_point_after_one_round(all_sources):
    for text in all_sources:
        canonical = print_program(parse_program(text))
        reprinted = print_program(parse_program(canonical))
        assert reprinted == canonical, \
            f"print not idempotent for:\n{text}"


def test_spans_survive_one_parse(all_sources):
    for text in all_sources:
        program = parse_program(text)
        for node in ast.walk(program):
            if isinstance(node, ast.Param):
                continue
            span = node.span
            assert span != DUMMY_SPAN, \
                f"{type(node).__name__} lost its span in:\n{text}"
            assert 0 <= span.start <= span.end <= len(text)
            assert span.line >= 1 and span.col >= 1


def test_spans_point_at_their_construct(all_sources):
    """The span's slice actually spells the node it belongs to, for the
    node kinds with an unambiguous leading lexeme."""
    for text in all_sources:
        program = parse_program(text)
        for node in ast.walk(program):
            slice_ = text[node.span.start:node.span.end]
            if isinstance(node, ast.LetStmt):
                assert slice_.startswith("let")
            elif isinstance(node, ast.PathExpr):
                assert slice_.startswith(node.segments[0])
            elif isinstance(node, ast.FnItem):
                assert slice_.startswith("fn")
            elif isinstance(node, ast.StaticItem):
                assert slice_.startswith("static")
            elif isinstance(node, ast.UnionItem):
                assert slice_.startswith("union")


def test_generated_sources_are_deterministic():
    first = generate_sources(40, seed=SEED)
    second = generate_sources(40, seed=SEED)
    assert first == second
    assert generate_sources(40, seed=SEED + 1) != first


def test_generated_sources_parse(all_sources):
    # Redundant with the fixed-point test's parse, but failure here reads
    # as "the generator emitted junk", not "the printer drifted".
    for text in all_sources[-GENERATED_COUNT:]:
        assert parse_program(text) is not None
