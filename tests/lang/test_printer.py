"""Printer tests: rendering and parse→print→parse stability."""

import pytest

from repro.lang import parse_expr, parse_program, print_expr, print_program


def roundtrip(source):
    """print(parse(print(parse(src)))) must be a fixed point."""
    once = print_program(parse_program(source))
    twice = print_program(parse_program(once))
    assert once == twice
    return once


class TestExprPrinting:
    @pytest.mark.parametrize("source,expected", [
        ("1 + 2 * 3", "1 + 2 * 3"),
        ("(1 + 2) * 3", "(1 + 2) * 3"),
        ("x as usize", "x as usize"),
        ("p as *const i32 as usize", "p as *const i32 as usize"),
        ("*p", "*p"),
        ("&mut x", "&mut x"),
        ("!flag", "!flag"),
        ("-x", "-x"),
        ("a.b.c", "a.b.c"),
        ("arr[0]", "arr[0]"),
        ("t.0", "t.0"),
        ("f(1, 2)", "f(1, 2)"),
        ("v.push(1)", "v.push(1)"),
        ("0..10", "0..10"),
        ("0..=10", "0..=10"),
        ("[1, 2, 3]", "[1, 2, 3]"),
        ("[0u8; 4]", "[0u8; 4]"),
        ("(1, 2)", "(1, 2)"),
        ("()", "()"),
        ("true", "true"),
        ('"hi"', '"hi"'),
        ("x = y", "x = y"),
        ("x += 1", "x += 1"),
        ("vec![1, 2]", "vec![1, 2]"),
        ("assert!(x > 0)", "assert!(x > 0)"),
    ])
    def test_expression_rendering(self, source, expected):
        assert print_expr(parse_expr(source)) == expected

    def test_turbofish_preserved(self):
        text = print_expr(parse_expr("mem::transmute::<&i32, usize>(p)"))
        assert text == "mem::transmute::<&i32, usize>(p)"

    def test_precedence_parens_inserted(self):
        # A tree built as (a + b) * c must print with parens.
        from repro.lang import ast_nodes as ast
        tree = ast.Binary("*", parse_expr("a + b"), parse_expr("c"))
        assert print_expr(tree) == "(a + b) * c"

    def test_nested_generics_printed_with_spacing(self):
        out = print_program(parse_program("fn main() { let v: Vec<Vec<i32>> = Vec::new(); }"))
        assert "Vec<Vec<i32>>" in out


class TestProgramRoundtrip:
    def test_simple_fn(self):
        out = roundtrip("fn main() { let x = 1; }")
        assert "fn main() {" in out
        assert "let x = 1;" in out

    def test_unsafe_block_statement(self):
        out = roundtrip("fn main() { unsafe { *p; } }")
        assert "unsafe {" in out

    def test_unsafe_block_as_initializer(self):
        out = roundtrip("fn main() { let x = unsafe { *p }; }")
        assert "unsafe { *p }" in out

    def test_if_else_chain(self):
        out = roundtrip(
            "fn main() { if a { x(); } else if b { y(); } else { z(); } }"
        )
        assert "} else if b {" in out

    def test_static_mut(self):
        out = roundtrip("static mut G: usize = 0;\nfn main() { }")
        assert "static mut G: usize = 0;" in out

    def test_struct_and_literal(self):
        out = roundtrip(
            "struct P { x: i32, y: i32 }\n"
            "fn main() { let p = P { x: 1, y: 2 }; }"
        )
        assert "P { x: 1, y: 2 }" in out

    def test_union(self):
        out = roundtrip("union B { i: i32, u: u32 }\nfn main() { }")
        assert "union B {" in out

    def test_threads_and_closures(self):
        out = roundtrip(
            "fn main() { let h = std::thread::spawn(move || { work(); }); h.join(); }"
        )
        assert "move ||" in out

    def test_for_while_loop(self):
        out = roundtrip(
            "fn main() { for i in 0..3 { } while x { } loop { break; } }"
        )
        assert "for i in 0..3 {" in out

    def test_full_ub_program(self):
        source = """
use std::mem;
fn main() {
    let p = &0;
    let addr = unsafe { mem::transmute::<&i32, usize>(p) };
    let q = addr as *const i32;
    let v = unsafe { *q };
    println!("{}", v);
}
"""
        out = roundtrip(source)
        assert "mem::transmute::<&i32, usize>(p)" in out

    def test_function_with_params_and_ret(self):
        out = roundtrip("fn add(a: i32, b: i32) -> i32 { a + b }")
        assert "fn add(a: i32, b: i32) -> i32 {" in out

    def test_unsafe_fn_item(self):
        out = roundtrip("unsafe fn f(p: *mut u8) { }")
        assert "unsafe fn f(p: *mut u8) {" in out
