"""Normalized-AST fingerprints: equivalences, non-collisions, memo layers."""

import pytest

from repro.miri import (BatchVerifier, CASE_MEMO, DETECTOR_STATS, detect_case,
                        detect_ub, detect_ub_batch, source_fingerprint)
from repro.miri.fingerprint import normalized_tokens

BASE = """
fn main() {
    let total = 3;
    let step = 2;
    println!("{}", total + step);
}
"""

#: Same program, hostile formatting plus comments.
REFORMATTED = """
// leading comment
fn main() {
        let total=3;   let step =2;
    /* block
       comment */
    println!("{}", total
        + step);
}
"""

#: Same program under a consistent renaming of the locals.
RENAMED = """
fn main() {
    let a = 3;
    let b = 2;
    println!("{}", a + b);
}
"""

BUGGY = """
fn main() {
    let b = Box::new(7);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
}
"""

BUGGY_RENAMED = """
fn main() {
    let boxed = Box::new(7);
    let raw = Box::into_raw(boxed);
    unsafe { drop(Box::from_raw(raw)); }
    let value = unsafe { *raw };
}
"""


class TestNormalization:
    def test_formatting_and_comments_collapse(self):
        assert source_fingerprint(BASE) == source_fingerprint(REFORMATTED)

    def test_consistent_renaming_collapses(self):
        assert source_fingerprint(BASE) == source_fingerprint(RENAMED)
        assert source_fingerprint(BUGGY) == source_fingerprint(BUGGY_RENAMED)

    def test_literals_distinguish(self):
        other = BASE.replace("let total = 3;", "let total = 4;")
        assert source_fingerprint(BASE) != source_fingerprint(other)

    def test_swapped_operands_distinguish(self):
        other = BASE.replace("total + step", "step + total")
        assert source_fingerprint(BASE) != source_fingerprint(other)

    def test_renaming_is_a_bijection(self):
        # Two distinct names never merge: x/y collapsing into one name is
        # a different program and must not share a fingerprint.
        two = "fn main() { let x = 1; let y = x; println!(\"{}\", y); }"
        one = "fn main() { let x = 1; let x = x; println!(\"{}\", x); }"
        assert source_fingerprint(two) != source_fingerprint(one)

    def test_shadowing_stays_name_level(self):
        # Name-level renaming is deliberately conservative about scopes:
        # alpha-equivalent shadowing variants may differ (never collide
        # wrongly), and identical shadowing patterns still match.
        shadow = "fn main() { let x = 1; let x = x + 1; }"
        renamed = "fn main() { let v = 1; let v = v + 1; }"
        assert source_fingerprint(shadow) == source_fingerprint(renamed)

    def test_path_segments_are_never_renamed(self):
        # `mem` / `transmute` ride `::` paths; a declared name that also
        # appears in path position is excluded wholesale, so a user
        # `transmute` binding cannot collide with a std path.
        tokens = normalized_tokens("""
        fn main() {
            let x: usize = unsafe { std::mem::transmute(&3i64) };
            println!("{}", x);
        }
        """)
        assert any(":transmute" in token for token in tokens)
        assert any(":std" in token for token in tokens)

    def test_function_names_are_never_renamed(self):
        # A function used as a value prints as `<fn name>` — fn names
        # are observable in stdout, so renaming them would let programs
        # with different output share a fingerprint (and corrupt the
        # fingerprint-keyed trace memo behind the exec metric).
        a = """
        fn helper() -> i64 { 1 }
        fn main() { let f = helper; println!("{}", f); }
        """
        b = """
        fn other() -> i64 { 1 }
        fn main() { let f = other; println!("{}", f); }
        """
        assert source_fingerprint(a) != source_fingerprint(b)
        assert detect_ub(a).stdout != detect_ub(b).stdout

    def test_union_names_and_fields_are_never_renamed(self):
        # Union literals print as `Name { field: value }` — observable
        # in stdout like fn names, unlike structs (bare element tuples).
        a = 'union U { f: i64 }\nfn main() { println!("{}", U { f: 1 }); }'
        b = 'union W { g: i64 }\nfn main() { println!("{}", W { g: 1 }); }'
        assert source_fingerprint(a) != source_fingerprint(b)
        assert detect_ub(a).stdout != detect_ub(b).stdout
        # A struct field sharing a union's printable field name must stay
        # verbatim too (renaming is name-level, not position-level).
        c = ("union U { f: i64 }\nstruct S { f: i64 }\n"
             'fn main() { println!("{}", U { f: 1 }); }')
        d = ("union U { f: i64 }\nstruct S { h: i64 }\n"
             'fn main() { println!("{}", U { f: 1 }); }')
        assert source_fingerprint(c) != source_fingerprint(d)

    def test_struct_names_still_collapse(self):
        # Struct values print as element tuples, never by name, so a
        # consistent struct renaming is safely deduplicated.  (Accessed
        # field names sit after a `.` and are excluded independently.)
        a = ("struct P { x: i64, y: i64 }\n"
             "fn main() { let p = P { x: 1, y: 2 };"
             ' println!("{}", p.x + p.y); }')
        b = ("struct Q { x: i64, y: i64 }\n"
             "fn main() { let q = Q { x: 1, y: 2 };"
             ' println!("{}", q.x + q.y); }')
        assert source_fingerprint(a) == source_fingerprint(b)
        assert detect_ub(a).stdout == detect_ub(b).stdout

    def test_special_call_names_are_protected(self):
        # `drop` resolves to the built-in shim before user items; a user
        # fn named drop must not normalize like an ordinary fn name.
        special = """
        fn drop(x: i64) -> i64 { x }
        fn main() { let b = Box::new(1); drop(b); }
        """
        ordinary = """
        fn helper(x: i64) -> i64 { x }
        fn main() { let b = Box::new(1); helper(b); }
        """
        assert source_fingerprint(special) != source_fingerprint(ordinary)

    def test_method_positions_are_protected(self):
        # `.len()` dispatches on the method *name*; a declared field/fn
        # sharing it is excluded rather than renamed.
        a = """
        fn len(v: i64) -> i64 { v }
        fn main() { let v = vec![1, 2]; println!("{}", v.len()); }
        """
        b = """
        fn size(v: i64) -> i64 { v }
        fn main() { let v = vec![1, 2]; println!("{}", v.size()); }
        """
        assert source_fingerprint(a) != source_fingerprint(b)

    def test_unparseable_sources_hash_raw(self):
        assert source_fingerprint("fn main( {") != \
            source_fingerprint("fn main(  {")
        assert source_fingerprint("fn main( {") == \
            source_fingerprint("fn main( {")

    def test_fingerprint_is_stable(self):
        assert source_fingerprint(BASE) == source_fingerprint(BASE)

    def test_nested_blocks_normalize(self):
        flat = "fn main() { let x = 1; { let y = x; println!(\"{}\", y); } }"
        spread = """
        fn main() {
            let a = 1;
            {
                let b = a;
                println!("{}", b);
            }
        }
        """
        assert source_fingerprint(flat) == source_fingerprint(spread)


class TestBatchFingerprintDedup:
    def test_formatting_divergent_duplicates_interpret_once(self):
        DETECTOR_STATS.reset()
        batch = detect_ub_batch([BUGGY, BUGGY_RENAMED])
        assert DETECTOR_STATS.requests == 2
        assert DETECTOR_STATS.runs == 1
        assert DETECTOR_STATS.fingerprint_hits == 1
        assert [r.passed for r in batch] == [False, False]
        assert [e.kind for e in batch[0].errors] == \
            [e.kind for e in batch[1].errors]

    def test_fingerprint_off_restores_textual_dedup(self):
        DETECTOR_STATS.reset()
        detect_ub_batch([BUGGY, BUGGY_RENAMED], fingerprint=False)
        assert DETECTOR_STATS.runs == 2
        assert DETECTOR_STATS.fingerprint_hits == 0

    def test_verdicts_match_per_source_detection(self):
        batch = detect_ub_batch([BASE, RENAMED, BUGGY_RENAMED])
        singles = [detect_ub(source)
                   for source in (BASE, RENAMED, BUGGY_RENAMED)]
        assert [(r.passed, [e.kind for e in r.errors], list(r.stdout))
                for r in batch] == \
            [(r.passed, [e.kind for e in r.errors], list(r.stdout))
             for r in singles]


class TestVerifierFingerprint:
    def test_normalized_repeat_hits_the_memo(self):
        verifier = BatchVerifier()
        first = verifier.verify(BUGGY)
        again = verifier.verify(BUGGY_RENAMED)
        assert again is first
        assert verifier.runs == 1
        assert verifier.fingerprint_hits == 1

    def test_seed_preloads_the_memo(self):
        verifier = BatchVerifier()
        report = detect_ub(BUGGY, collect=True)
        verifier.seed(BUGGY, report)
        assert verifier.verify(BUGGY) is report
        assert verifier.verify(BUGGY_RENAMED) is report
        assert verifier.runs == 0

    def test_fingerprint_off_keeps_textual_memo_only(self):
        verifier = BatchVerifier(fingerprint=False)
        verifier.verify(BUGGY)
        verifier.verify(BUGGY_RENAMED)
        assert verifier.runs == 2
        assert verifier.fingerprint_hits == 0


class TestCaseMemo:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        CASE_MEMO.clear()
        yield
        CASE_MEMO.clear()
        CASE_MEMO.enabled = True

    def test_repeats_interpret_once_with_isolated_copies(self):
        DETECTOR_STATS.reset()
        first = detect_case(BUGGY, collect=True)
        second = detect_case(BUGGY, collect=True)
        assert DETECTOR_STATS.requests == 2
        assert DETECTOR_STATS.runs == 1
        assert DETECTOR_STATS.case_memo_hits == 1
        assert first is not second
        first.errors.clear()
        assert second.errors  # a caller's mutation stays its own

    def test_options_are_part_of_the_key(self):
        DETECTOR_STATS.reset()
        detect_case(BUGGY, collect=True)
        detect_case(BUGGY, collect=False)
        assert DETECTOR_STATS.runs == 2

    def test_matches_detect_ub(self):
        memoized = detect_case(BUGGY, collect=True)
        direct = detect_ub(BUGGY, collect=True)
        assert memoized.passed == direct.passed
        assert [e.kind for e in memoized.errors] == \
            [e.kind for e in direct.errors]
        assert memoized.stdout == direct.stdout

    def test_disabled_memo_always_runs(self):
        CASE_MEMO.enabled = False
        DETECTOR_STATS.reset()
        detect_case(BUGGY, collect=True)
        detect_case(BUGGY, collect=True)
        assert DETECTOR_STATS.runs == 2
        assert DETECTOR_STATS.case_memo_hits == 0
        assert len(CASE_MEMO) == 0

    def test_bounded(self):
        small = type(CASE_MEMO)(limit=1)
        small.store(("a",), detect_ub(BASE))
        small.store(("b",), detect_ub(BASE))
        assert len(small) == 1


class TestGeneratedMutantDifferential:
    """The generator's mutation operators, checked differentially: the
    fingerprint-preserving operators (rename, format, distractor
    respelling) must collide with their parent, while behaviour-changing
    shape mutations (statement reordering, injected statements, literal
    perturbation) must not."""

    def _mutants(self, operator_name, count=12):
        import random

        from repro.corpus import load_dataset
        from repro.corpus.generator import MUTATION_OPERATORS, MutationSkip

        operator, preserving = MUTATION_OPERATORS[operator_name]
        rng = random.Random(99)
        pairs = []
        for case in list(load_dataset())[:count]:
            try:
                source, _fixed = operator(case, rng)
            except MutationSkip:
                continue
            pairs.append((case.source, source))
        assert pairs, f"operator {operator_name} never applied"
        return pairs, preserving

    @pytest.mark.parametrize("operator_name",
                             ["rename", "format", "distract"])
    def test_equivalence_mutants_collide(self, operator_name):
        pairs, preserving = self._mutants(operator_name)
        assert preserving
        for parent, mutant in pairs:
            assert mutant != parent
            assert source_fingerprint(mutant) == source_fingerprint(parent)

    @pytest.mark.parametrize("operator_name",
                             ["reorder", "inject", "perturb"])
    def test_shape_mutants_do_not_collide(self, operator_name):
        pairs, preserving = self._mutants(operator_name)
        assert not preserving
        for parent, mutant in pairs:
            assert source_fingerprint(mutant) != source_fingerprint(parent)

    def test_behaviour_changing_edit_never_collides(self):
        # Beyond the built-in operators: flipping an observable literal
        # is the smallest behaviour change there is.
        changed = BASE.replace("let total = 3;", "let total = 4;")
        assert source_fingerprint(changed) != source_fingerprint(BASE)

    def test_generated_cases_keep_distinct_fingerprints_per_behaviour(self):
        # A generated corpus may contain rename/format mutants (same
        # fingerprint as their parent) but a case's buggy and fixed
        # sides must never collide with each other.
        from repro.corpus import generate_corpus

        cases, _report = generate_corpus(15, seed=31)
        for case in cases:
            assert source_fingerprint(case.source) != \
                source_fingerprint(case.fixed_source)
