"""Detection tests: one class per UB category of the paper's dataset."""

import pytest

from repro.miri import detect_ub
from repro.miri.errors import UbKind


def expect(source, kind: UbKind):
    report = detect_ub(source, debug=True)
    assert not report.passed, "expected UB, program passed"
    assert report.errors[0].kind is kind, report.render()
    return report


def expect_pass(source):
    report = detect_ub(source, debug=True)
    assert report.passed, report.render()
    return report


class TestDanglingPointer:
    def test_use_after_free_box(self):
        expect('''
fn main() {
    let b = Box::new(7);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
}''', UbKind.DANGLING_POINTER)

    def test_null_deref(self):
        expect('''
use std::ptr;
fn main() {
    let p: *const i32 = ptr::null();
    let v = unsafe { *p };
}''', UbKind.DANGLING_POINTER)

    def test_vec_realloc_invalidates_ptr(self):
        expect('''
fn main() {
    let mut v: Vec<i32> = Vec::with_capacity(1);
    v.push(1);
    let p = v.as_ptr();
    v.push(2);
    let x = unsafe { *p };
}''', UbKind.DANGLING_POINTER)

    def test_ptr_arithmetic_out_of_bounds(self):
        expect('''
fn main() {
    let arr = [1, 2, 3];
    let p = arr.as_ptr();
    let q = unsafe { p.add(10) };
}''', UbKind.DANGLING_POINTER)

    def test_wrapping_add_defers_check_to_deref(self):
        # wrapping_add may go OOB; only the dereference is UB.
        expect('''
fn main() {
    let arr = [1, 2, 3];
    let p = arr.as_ptr();
    let q = p.wrapping_add(10);
    let v = unsafe { *q };
}''', UbKind.DANGLING_POINTER)

    def test_drop_then_index_vec(self):
        expect('''
fn main() {
    let mut v = vec![1, 2, 3];
    drop(v);
    let x = v[0];
}''', UbKind.DANGLING_POINTER)


class TestStackBorrow:
    def test_raw_invalidated_by_new_mut_borrow(self):
        expect('''
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    let r = &mut x;
    *r += 1;
    let v = unsafe { *p };
}''', UbKind.STACK_BORROW)

    def test_raw_invalidated_by_direct_write(self):
        expect('''
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    x = 6;
    let v = unsafe { *p };
}''', UbKind.STACK_BORROW)

    def test_raw_still_valid_without_invalidation(self):
        expect_pass('''
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    unsafe { *p += 1; }
    println!("{}", x);
}''')


class TestBothBorrow:
    def test_shared_invalidated_by_mut_write(self):
        expect('''
fn main() {
    let mut x = 5;
    let r = &mut x;
    let s = &x;
    *r += 1;
    let v = *s;
}''', UbKind.BOTH_BORROW)

    def test_write_through_shared_ref(self):
        # `*s = 1` through &i32: our detector reports it as a borrow error
        # at the write (rustc would reject statically).
        report = detect_ub('''
fn main() {
    let mut x = 5;
    let s = &x;
    *s = 9;
}''', debug=True)
        assert not report.passed


class TestProvenance:
    def test_int_to_ptr_deref(self):
        expect('''
fn main() {
    let addr: usize = 0x1000;
    let p = addr as *const i32;
    let v = unsafe { *p };
}''', UbKind.PROVENANCE)

    def test_transmute_ref_to_usize_then_back(self):
        expect('''
use std::mem;
fn main() {
    let x = 5;
    let p = &x;
    let addr = unsafe { mem::transmute::<&i32, usize>(p) };
    let q = addr as *const i32;
    let v = unsafe { *q };
}''', UbKind.PROVENANCE)

    def test_ptr_as_usize_without_deref_is_fine(self):
        expect_pass('''
fn main() {
    let x = 5;
    let p = &x as *const i32 as usize;
    println!("{}", p > 0);
}''')


class TestUninit:
    def test_assume_init_uninit(self):
        expect('''
fn main() {
    let mu: MaybeUninit<i32> = MaybeUninit::uninit();
    let v = unsafe { mu.assume_init() };
}''', UbKind.UNINIT)

    def test_assume_init_after_write_is_fine(self):
        expect_pass('''
fn main() {
    let mut mu: MaybeUninit<i32> = MaybeUninit::uninit();
    mu.write(5);
    let v = unsafe { mu.assume_init() };
    println!("{}", v);
}''')

    def test_set_len_exposes_uninit(self):
        expect('''
fn main() {
    let mut v: Vec<i32> = Vec::with_capacity(4);
    unsafe { v.set_len(3); }
    let x = v[2];
}''', UbKind.UNINIT)

    def test_union_padding_uninit(self):
        expect('''
union Bits { small: u8, big: u32 }
fn main() {
    let b = Bits { small: 1 };
    let v = unsafe { b.big };
}''', UbKind.UNINIT)

    def test_read_uninit_heap(self):
        expect('''
use std::alloc;
fn main() {
    let layout = Layout::from_size_align(4, 4).unwrap();
    let p = unsafe { alloc::alloc(layout) } as *mut i32;
    let v = unsafe { *p };
}''', UbKind.UNINIT)


class TestValidity:
    def test_bool_from_2(self):
        expect('''
use std::mem;
fn main() {
    let n: u8 = 2;
    let b = unsafe { mem::transmute::<u8, bool>(n) };
}''', UbKind.VALIDITY)

    def test_null_ref_from_zeroed(self):
        expect('''
use std::mem;
fn main() {
    let r = unsafe { mem::zeroed::<&i32>() };
}''', UbKind.VALIDITY)

    def test_invalid_char(self):
        expect('''
use std::mem;
fn main() {
    let n: u32 = 0xD800;
    let c = unsafe { mem::transmute::<u32, char>(n) };
}''', UbKind.VALIDITY)

    def test_transmute_size_mismatch_is_compile_error(self):
        report = detect_ub('''
use std::mem;
fn main() {
    let n1 = [0x17u8, 0x07];
    let n2 = unsafe { mem::transmute::<[u8; 2], u32>(n1) };
}''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE


class TestUnaligned:
    def test_misaligned_u32_read(self):
        expect('''
fn main() {
    let arr = [0u8, 1, 2, 3, 4, 5, 6, 7];
    let p = arr.as_ptr();
    let q = unsafe { p.add(1) } as *const u32;
    let v = unsafe { *q };
}''', UbKind.UNALIGNED)

    def test_aligned_access_is_fine(self):
        expect_pass('''
fn main() {
    let arr = [0u8, 1, 2, 3, 4, 5, 6, 7];
    let p = arr.as_ptr() as *const u32;
    let v = unsafe { *p };
    println!("{}", v);
}''')


class TestAlloc:
    def test_double_free(self):
        expect('''
fn main() {
    let b = Box::new(1);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    unsafe { drop(Box::from_raw(p)); }
}''', UbKind.ALLOC)

    def test_dealloc_with_wrong_layout(self):
        expect('''
use std::alloc;
fn main() {
    let layout = Layout::from_size_align(8, 8).unwrap();
    let p = unsafe { alloc::alloc(layout) };
    let wrong = Layout::from_size_align(16, 8).unwrap();
    unsafe { alloc::dealloc(p, wrong); }
}''', UbKind.ALLOC)

    def test_zero_size_alloc(self):
        expect('''
use std::alloc;
fn main() {
    let layout = Layout::from_size_align(0, 1).unwrap();
    let p = unsafe { alloc::alloc(layout) };
}''', UbKind.ALLOC)

    def test_proper_alloc_dealloc_passes(self):
        expect_pass('''
use std::alloc;
fn main() {
    let layout = Layout::from_size_align(8, 8).unwrap();
    let p = unsafe { alloc::alloc(layout) } as *mut u64;
    unsafe { *p = 42; }
    let v = unsafe { *p };
    let layout2 = Layout::from_size_align(8, 8).unwrap();
    unsafe { alloc::dealloc(p as *mut u8, layout2); }
    println!("{}", v);
}''')


class TestDataRace:
    def test_static_mut_race(self):
        expect('''
static mut COUNTER: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { COUNTER += 1; }
    });
    unsafe { COUNTER += 1; }
    h.join();
}''', UbKind.DATA_RACE)

    def test_join_before_access_is_ordered(self):
        expect_pass('''
static mut COUNTER: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { COUNTER += 1; }
    });
    h.join();
    unsafe { COUNTER += 1; }
    println!("{}", unsafe { COUNTER });
}''')

    def test_atomic_avoids_race(self):
        expect_pass('''
static COUNTER: AtomicUsize = AtomicUsize::new(0);
fn main() {
    let h = std::thread::spawn(move || {
        COUNTER.fetch_add(1, Ordering::SeqCst);
    });
    COUNTER.fetch_add(1, Ordering::SeqCst);
    h.join();
    println!("{}", COUNTER.load(Ordering::SeqCst));
}''')

    def test_mutex_avoids_race(self):
        expect_pass('''
static M: Mutex<i32> = Mutex::new(0);
fn main() {
    let h = std::thread::spawn(move || {
        let mut g = M.lock();
        *g += 1;
        drop(g);
    });
    h.join();
    let g = M.lock();
    println!("{}", *g);
    drop(g);
}''')

    def test_race_through_raw_pointer(self):
        # The move closure captures the raw pointer (provenance intact);
        # the child's write races with the parent's unsynchronized write.
        expect('''
fn main() {
    let mut data = 0i64;
    let p = &mut data as *mut i64;
    let h = std::thread::spawn(move || {
        unsafe { *p = 1; }
    });
    data = 2;
    h.join();
}''', UbKind.DATA_RACE)


class TestConcurrency:
    def test_unjoined_thread(self):
        expect('''
fn main() {
    std::thread::spawn(move || {
        let x = 1;
    });
}''', UbKind.CONCURRENCY)

    def test_double_lock_deadlock(self):
        expect('''
static M: Mutex<i32> = Mutex::new(0);
fn main() {
    let g1 = M.lock();
    let g2 = M.lock();
}''', UbKind.CONCURRENCY)


class TestFunctionPointers:
    def test_transmuted_wrong_arity(self):
        expect('''
use std::mem;
fn add(a: i32, b: i32) -> i32 { a + b }
fn main() {
    let f = unsafe { mem::transmute::<fn(i32, i32) -> i32, fn(i32) -> i32>(add) };
    let v = f(1);
}''', UbKind.FUNC_POINTER)

    def test_fn_ptr_from_int(self):
        expect('''
use std::mem;
fn main() {
    let f = unsafe { mem::transmute::<usize, fn() -> i32>(42) };
    let v = f();
}''', UbKind.FUNC_POINTER)

    def test_wrong_return_type(self):
        expect('''
use std::mem;
fn get() -> i32 { 1 }
fn main() {
    let f = unsafe { mem::transmute::<fn() -> i32, fn() -> u64>(get) };
    let v = f();
}''', UbKind.FUNC_POINTER)

    def test_correct_fn_ptr_passes(self):
        expect_pass('''
fn get() -> i32 { 7 }
fn main() {
    let f: fn() -> i32 = get;
    println!("{}", f());
}''')


class TestPanicCategory:
    def test_explicit_panic(self):
        expect('fn main() { panic!("nope"); }', UbKind.PANIC)

    def test_assert_failure(self):
        expect('fn main() { assert!(false, "bad"); }', UbKind.PANIC)

    def test_index_oob(self):
        expect('''
fn main() {
    let a = [1, 2];
    let i = 2;
    let v = a[i];
}''', UbKind.PANIC)

    def test_unwrap_none(self):
        expect('''
fn main() {
    let mut v: Vec<i32> = Vec::new();
    let x = v.pop().unwrap();
}''', UbKind.PANIC)


class TestUnsafeEnforcement:
    def test_raw_deref_needs_unsafe(self):
        report = detect_ub('''
fn main() {
    let x = 1;
    let p = &x as *const i32;
    let v = *p;
}''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE
        assert "E0133" in report.errors[0].message

    def test_unsafe_fn_call_needs_unsafe(self):
        report = detect_ub('''
unsafe fn danger() -> i32 { 1 }
fn main() {
    let v = danger();
}''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE

    def test_unsafe_fn_body_is_unsafe_context(self):
        expect_pass('''
unsafe fn read_it(p: *const i32) -> i32 { *p }
fn main() {
    let x = 9;
    let v = unsafe { read_it(&x as *const i32) };
    println!("{}", v);
}''')

    def test_static_mut_needs_unsafe(self):
        report = detect_ub('''
static mut G: i32 = 0;
fn main() { G = 5; }''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE

    def test_union_field_needs_unsafe(self):
        report = detect_ub('''
union B { a: u8, b: u8 }
fn main() {
    let u = B { a: 1 };
    let v = u.a;
}''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE

    def test_transmute_needs_unsafe(self):
        report = detect_ub('''
use std::mem;
fn main() {
    let v = mem::transmute::<u32, i32>(1u32);
}''', debug=True)
        assert report.errors[0].kind is UbKind.COMPILE


class TestCollectMode:
    def test_collects_multiple_errors(self):
        report = detect_ub('''
fn main() {
    let a = unsafe { *(0x100 as *const i32) };
    let b = unsafe { *(0x200 as *const i32) };
    println!("done");
}''', collect=True)
        assert report.error_count == 2
        assert report.stdout == ["done"]

    def test_stop_at_first_by_default(self):
        report = detect_ub('''
fn main() {
    let a = unsafe { *(0x100 as *const i32) };
    let b = unsafe { *(0x200 as *const i32) };
}''')
        assert report.error_count == 1

    def test_collect_respects_max_errors(self):
        source = "fn main() {\n" + "\n".join(
            f"    let x{i} = unsafe {{ *({i + 1} as *const u8) }};"
            for i in range(10)
        ) + "\n}"
        report = detect_ub(source, collect=True, max_errors=3)
        assert report.error_count == 3

    def test_panic_stops_collection(self):
        report = detect_ub('''
fn main() {
    let a = unsafe { *(0x100 as *const i32) };
    panic!("stop");
    let b = unsafe { *(0x200 as *const i32) };
}''', collect=True)
        kinds = [e.kind for e in report.errors]
        assert UbKind.PANIC in kinds
        assert len(kinds) == 2  # provenance + panic; nothing after the panic

    def test_parse_error_reported_as_compile(self):
        report = detect_ub("fn main() { let = ; }")
        assert report.errors[0].kind is UbKind.COMPILE
