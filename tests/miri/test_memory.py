"""Unit tests for the byte-level memory model."""

import pytest

from repro.lang import types as ty
from repro.miri.errors import UbKind, UbSignal
from repro.miri.memory import AllocKind, Memory
from repro.miri.values import VAggregate, VBool, VChar, VInt, VPtr


def make_memory():
    return Memory()


def stack_alloc(memory, size=16, align=8):
    return memory.allocate(size, align, AllocKind.STACK, "test")


def place(alloc, pointee, offset=0, mutable=True):
    return VPtr(alloc.id, alloc.base_addr + offset, alloc.base_tag, pointee,
                mutable=mutable)


class TestAllocation:
    def test_addresses_are_aligned(self):
        memory = make_memory()
        for align in (1, 2, 4, 8, 16):
            alloc = memory.allocate(8, align, AllocKind.STACK)
            assert alloc.base_addr % align == 0

    def test_addresses_never_overlap(self):
        memory = make_memory()
        a = memory.allocate(64, 8, AllocKind.HEAP)
        b = memory.allocate(64, 8, AllocKind.HEAP)
        assert a.base_addr + a.size <= b.base_addr or \
               b.base_addr + b.size <= a.base_addr

    def test_fresh_allocation_is_uninit(self):
        memory = make_memory()
        alloc = stack_alloc(memory)
        assert all(b == 0 for b in alloc.init)

    def test_double_free_detected(self):
        memory = make_memory()
        alloc = memory.allocate(8, 8, AllocKind.HEAP)
        memory.deallocate(alloc.id)
        with pytest.raises(UbSignal) as err:
            memory.deallocate(alloc.id)
        assert err.value.error.kind is UbKind.ALLOC

    def test_dealloc_stack_memory_rejected(self):
        memory = make_memory()
        alloc = stack_alloc(memory)
        with pytest.raises(UbSignal) as err:
            memory.deallocate(alloc.id)
        assert err.value.error.kind is UbKind.ALLOC

    def test_dealloc_wrong_size_rejected(self):
        memory = make_memory()
        alloc = memory.allocate(8, 8, AllocKind.HEAP)
        with pytest.raises(UbSignal) as err:
            memory.deallocate(alloc.id, expected_size=16)
        assert "incorrect layout" in err.value.error.message

    def test_dealloc_wrong_align_rejected(self):
        memory = make_memory()
        alloc = memory.allocate(8, 8, AllocKind.HEAP)
        with pytest.raises(UbSignal) as err:
            memory.deallocate(alloc.id, expected_align=16)
        assert err.value.error.kind is UbKind.ALLOC


class TestReadWrite:
    def test_int_roundtrip(self):
        memory = make_memory()
        alloc = stack_alloc(memory)
        p = place(alloc, ty.I32)
        data, relocs = memory.encode(VInt(-7, ty.I32), ty.I32)
        memory.write_bytes(p, data, relocs, 4, tid=0)
        out, relocs = memory.read_bytes(p, 4, 4, tid=0)
        value = memory.decode(out, relocs, ty.I32)
        assert value == VInt(-7, ty.I32)

    def test_uninit_read_rejected(self):
        memory = make_memory()
        alloc = stack_alloc(memory)
        p = place(alloc, ty.I32)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(p, 4, 4, tid=0)
        assert err.value.error.kind is UbKind.UNINIT

    def test_partial_init_read_rejected(self):
        memory = make_memory()
        alloc = stack_alloc(memory)
        byte_place = place(alloc, ty.U8)
        data, _ = memory.encode(VInt(1, ty.U8), ty.U8)
        memory.write_bytes(byte_place, data, {}, 1, tid=0)
        whole = place(alloc, ty.U32)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(whole, 4, 4, tid=0)
        assert err.value.error.kind is UbKind.UNINIT

    def test_out_of_bounds_read(self):
        memory = make_memory()
        alloc = stack_alloc(memory, size=4)
        beyond = VPtr(alloc.id, alloc.base_addr + 4, alloc.base_tag, ty.I32,
                      mutable=True)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(beyond, 4, 1, tid=0)
        assert err.value.error.kind is UbKind.DANGLING_POINTER

    def test_freed_read_is_dangling(self):
        memory = make_memory()
        alloc = memory.allocate(8, 8, AllocKind.HEAP)
        p = place(alloc, ty.I64)
        data, _ = memory.encode(VInt(1, ty.I64), ty.I64)
        memory.write_bytes(p, data, {}, 8, tid=0)
        memory.deallocate(alloc.id)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(p, 8, 8, tid=0)
        assert err.value.error.kind is UbKind.DANGLING_POINTER

    def test_unaligned_access_rejected(self):
        memory = make_memory()
        alloc = stack_alloc(memory, size=16, align=8)
        data, _ = memory.encode(VInt(0, ty.U64), ty.U64)
        memory.write_bytes(place(alloc, ty.U64), data, {}, 8, tid=0)
        odd = VPtr(alloc.id, alloc.base_addr + 1, alloc.base_tag, ty.U32,
                   mutable=True)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(odd, 4, 4, tid=0)
        assert err.value.error.kind is UbKind.UNALIGNED

    def test_no_provenance_access_rejected(self):
        memory = make_memory()
        forged = VPtr(None, 0x1234, None, ty.I32, mutable=True)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(forged, 4, 4, tid=0)
        assert err.value.error.kind is UbKind.PROVENANCE

    def test_null_access_is_dangling(self):
        memory = make_memory()
        null = VPtr(None, 0, None, ty.I32, mutable=True)
        with pytest.raises(UbSignal) as err:
            memory.read_bytes(null, 4, 4, tid=0)
        assert err.value.error.kind is UbKind.DANGLING_POINTER


class TestProvenance:
    def test_pointer_roundtrip_keeps_provenance(self):
        memory = make_memory()
        target = stack_alloc(memory)
        holder = stack_alloc(memory, size=8)
        pointer = VPtr(target.id, target.base_addr, target.base_tag, ty.I32,
                       mutable=True)
        ptr_ty = ty.TyRawPtr(ty.I32, True)
        data, relocs = memory.encode(pointer, ptr_ty)
        memory.write_bytes(place(holder, ptr_ty), data, relocs, 8, tid=0)
        out, out_relocs = memory.read_bytes(place(holder, ptr_ty), 8, 8, tid=0)
        decoded = memory.decode(out, out_relocs, ptr_ty)
        assert decoded.alloc_id == target.id
        assert decoded.tag == target.base_tag

    def test_int_write_clobbers_relocation(self):
        memory = make_memory()
        target = stack_alloc(memory)
        holder = stack_alloc(memory, size=8)
        pointer = VPtr(target.id, target.base_addr, target.base_tag, ty.I32)
        ptr_ty = ty.TyRawPtr(ty.I32, False)
        data, relocs = memory.encode(pointer, ptr_ty)
        memory.write_bytes(place(holder, ptr_ty), data, relocs, 8, tid=0)
        # Overwrite the first byte with an integer: provenance must die.
        memory.write_bytes(place(holder, ty.U8), b"\x01", {}, 1, tid=0)
        out, out_relocs = memory.read_bytes(place(holder, ptr_ty), 8, 8, tid=0)
        decoded = memory.decode(out, out_relocs, ptr_ty)
        assert decoded.alloc_id is None

    def test_decoding_ref_without_provenance_is_validity_error(self):
        memory = make_memory()
        data = (0x1234).to_bytes(8, "little")
        with pytest.raises(UbSignal) as err:
            memory.decode(data, {}, ty.TyRef(ty.I32, False))
        assert err.value.error.kind is UbKind.VALIDITY

    def test_decoding_null_ref_is_validity_error(self):
        memory = make_memory()
        with pytest.raises(UbSignal) as err:
            memory.decode(b"\x00" * 8, {}, ty.TyRef(ty.I32, False))
        assert "null reference" in err.value.error.message


class TestDecodeValidity:
    def test_bool_from_2_is_invalid(self):
        memory = make_memory()
        with pytest.raises(UbSignal) as err:
            memory.decode(b"\x02", {}, ty.BOOL)
        assert err.value.error.kind is UbKind.VALIDITY

    def test_bool_from_0_and_1_valid(self):
        memory = make_memory()
        assert memory.decode(b"\x00", {}, ty.BOOL) == VBool(False)
        assert memory.decode(b"\x01", {}, ty.BOOL) == VBool(True)

    def test_char_surrogate_is_invalid(self):
        memory = make_memory()
        data = (0xD800).to_bytes(4, "little")
        with pytest.raises(UbSignal) as err:
            memory.decode(data, {}, ty.CHAR)
        assert err.value.error.kind is UbKind.VALIDITY

    def test_char_valid_scalar(self):
        memory = make_memory()
        data = ord("A").to_bytes(4, "little")
        assert memory.decode(data, {}, ty.CHAR) == VChar("A")

    def test_aggregate_roundtrip(self):
        memory = make_memory()
        tup_ty = ty.TyTuple((ty.U8, ty.U32))
        value = VAggregate(tup_ty, (VInt(7, ty.U8), VInt(1000, ty.U32)))
        data, relocs = memory.encode(value, tup_ty)
        decoded = memory.decode(data, relocs, tup_ty)
        assert decoded.elems[0].value == 7
        assert decoded.elems[1].value == 1000

    def test_array_roundtrip(self):
        memory = make_memory()
        arr_ty = ty.TyArray(ty.I16, 3)
        value = VAggregate(arr_ty, tuple(VInt(i, ty.I16) for i in (1, -2, 3)))
        data, relocs = memory.encode(value, arr_ty)
        decoded = memory.decode(data, relocs, arr_ty)
        assert [e.value for e in decoded.elems] == [1, -2, 3]


class TestFnAddrs:
    def test_fn_addr_stable(self):
        memory = make_memory()
        a1 = memory.fn_addr("foo")
        a2 = memory.fn_addr("foo")
        assert a1 == a2

    def test_fn_addr_distinct(self):
        memory = make_memory()
        assert memory.fn_addr("foo") != memory.fn_addr("bar")

    def test_reverse_lookup(self):
        memory = make_memory()
        addr = memory.fn_addr("foo")
        assert memory.fns_by_addr[addr] == "foo"
