"""Unit tests for the simplified stacked-borrows model."""

import pytest

from repro.miri.borrows import (
    BorrowError,
    BorrowStack,
    Permission,
    TagOrigin,
)
from repro.miri.errors import UbKind


def fresh_stack():
    return BorrowStack.new_allocation()


class TestBasicAccess:
    def test_base_tag_grants_read_and_write(self):
        stack, base = fresh_stack()
        stack.read(base)
        stack.write(base)
        assert stack.grants(base)

    def test_missing_tag_read_raises(self):
        stack, base = fresh_stack()
        with pytest.raises(BorrowError):
            stack.read(9999)

    def test_missing_tag_write_raises(self):
        stack, base = fresh_stack()
        with pytest.raises(BorrowError):
            stack.write(9999)


class TestRetags:
    def test_retag_mut_pushes_unique(self):
        stack, base = fresh_stack()
        tag = stack.retag_mut(base)
        assert stack.items[-1].tag == tag
        assert stack.items[-1].perm is Permission.UNIQUE

    def test_retag_shared_pushes_shared_ro(self):
        stack, base = fresh_stack()
        tag = stack.retag_shared(base)
        assert stack.items[-1].perm is Permission.SHARED_RO

    def test_retag_raw_mut_pushes_shared_rw(self):
        stack, base = fresh_stack()
        tag = stack.retag_raw(base, mutable=True)
        assert stack.items[-1].perm is Permission.SHARED_RW
        assert stack.origins[tag] is TagOrigin.RAW


class TestInvalidation:
    def test_write_via_base_invalidates_raw(self):
        """The classic stacked-borrows case: &mut x → raw, then new &mut x."""
        stack, base = fresh_stack()
        ref_tag = stack.retag_mut(base)
        raw_tag = stack.retag_raw(ref_tag, mutable=True)
        # New mutable reborrow from the base pops everything above it.
        stack.retag_mut(base)
        with pytest.raises(BorrowError) as err:
            stack.read(raw_tag)
        assert err.value.error.kind is UbKind.STACK_BORROW

    def test_write_via_base_invalidates_shared_ref(self):
        """Both-borrow case: & alias invalidated by a write."""
        stack, base = fresh_stack()
        shared = stack.retag_shared(base)
        stack.write(base)
        with pytest.raises(BorrowError) as err:
            stack.read(shared)
        assert err.value.error.kind is UbKind.BOTH_BORROW

    def test_read_keeps_shared_rw(self):
        stack, base = fresh_stack()
        raw = stack.retag_raw(base, mutable=True)
        stack.read(base)  # reads only pop Unique items
        stack.read(raw)   # still valid

    def test_read_pops_unique_above(self):
        stack, base = fresh_stack()
        unique = stack.retag_mut(base)
        stack.read(base)
        with pytest.raises(BorrowError):
            stack.write(unique)

    def test_write_through_shared_ro_rejected(self):
        stack, base = fresh_stack()
        shared = stack.retag_shared(base)
        with pytest.raises(BorrowError) as err:
            stack.write(shared)
        assert err.value.error.kind is UbKind.BOTH_BORROW

    def test_error_category_by_origin(self):
        # Raw-origin missing tag → stack_borrow; ref-origin → both_borrow.
        stack, base = fresh_stack()
        raw = stack.retag_raw(base, mutable=True)
        shared = stack.retag_shared(raw)
        stack.write(base)
        with pytest.raises(BorrowError) as raw_err:
            stack.write(raw)
        assert raw_err.value.error.kind is UbKind.STACK_BORROW
        with pytest.raises(BorrowError) as ref_err:
            stack.read(shared)
        assert ref_err.value.error.kind is UbKind.BOTH_BORROW

    def test_nested_reborrows_form_stack(self):
        stack, base = fresh_stack()
        t1 = stack.retag_mut(base)
        t2 = stack.retag_mut(t1)
        t3 = stack.retag_mut(t2)
        assert stack.depth() == 4
        stack.write(t1)  # pops t2, t3
        assert stack.depth() == 2
        assert not stack.grants(t2)
        assert not stack.grants(t3)


class TestTagIsolation:
    """Tag numbering restarts per execution: diagnostics (and therefore
    prompt token counts) depend only on the program, never on what else
    ran earlier in the process or on another thread."""

    BUGGY = '''
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    let r = &mut x;
    *r += 1;
    let v = unsafe { *p };
}'''

    def test_report_identical_after_other_runs(self):
        from repro.miri import detect_ub
        first = detect_ub(self.BUGGY).render()
        for _ in range(5):
            detect_ub('fn main() { let a = &mut 1; let b = &mut 2; }')
        assert detect_ub(self.BUGGY).render() == first

    def test_reports_identical_across_threads(self):
        import threading
        from repro.miri import detect_ub
        results = {}

        def work(key, warmups):
            for _ in range(warmups):
                detect_ub('fn main() { let r = &mut 3; *r += 1; }')
            results[key] = detect_ub(self.BUGGY).render()

        threads = [threading.Thread(target=work, args=(n, n * 3))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results.values())) == 1
