"""Interpreter tests: language semantics on UB-free programs."""

import pytest

from repro.miri import detect_ub


def run(source):
    report = detect_ub(source, debug=True)
    assert report.passed, f"unexpected errors: {report.render()}"
    return report


def run_expect_error(source, kind_value):
    report = detect_ub(source, debug=True)
    assert not report.passed, "expected an error"
    assert report.errors[0].kind.value == kind_value, report.render()
    return report


class TestArithmetic:
    def test_basic_math(self):
        report = run('fn main() { println!("{}", 2 + 3 * 4 - 1); }')
        assert report.stdout == ["13"]

    def test_division_truncates_toward_zero(self):
        report = run('fn main() { println!("{} {}", 7 / 2, -7 / 2); }')
        assert report.stdout == ["3 -3"]

    def test_remainder(self):
        report = run('fn main() { println!("{}", 10 % 3); }')
        assert report.stdout == ["1"]

    def test_bitwise_ops(self):
        report = run('fn main() { println!("{} {} {}", 6 & 3, 6 | 3, 6 ^ 3); }')
        assert report.stdout == ["2 7 5"]

    def test_shifts(self):
        report = run('fn main() { println!("{} {}", 1 << 4, 32 >> 2); }')
        assert report.stdout == ["16 8"]

    def test_unsigned_types(self):
        report = run('fn main() { let x: u8 = 200; println!("{}", x / 3); }')
        assert report.stdout == ["66"]

    def test_comparison_chain(self):
        report = run(
            'fn main() { println!("{}", 1 < 2 && 3 >= 3 || false); }')
        assert report.stdout == ["true"]

    def test_overflow_panics(self):
        run_expect_error(
            "fn main() { let x = i32::MAX; let y = x + 1; }", "panic")

    def test_division_by_zero_panics(self):
        run_expect_error(
            "fn main() { let a = 1; let b = 0; let c = a / b; }", "panic")

    def test_shift_overflow_panics(self):
        run_expect_error(
            "fn main() { let a = 1i32; let b = a << 32; }", "panic")

    def test_negate_min_panics(self):
        run_expect_error(
            "fn main() { let x = i32::MIN; let y = -x; }", "panic")

    def test_wrapping_methods_do_not_panic(self):
        report = run(
            'fn main() { let x = i32::MAX; println!("{}", x.wrapping_add(1)); }')
        assert report.stdout == [str(-(2**31))]


class TestControlFlow:
    def test_if_else(self):
        report = run('''
fn main() {
    let x = 5;
    if x > 3 { println!("big"); } else { println!("small"); }
}''')
        assert report.stdout == ["big"]

    def test_if_as_value(self):
        report = run(
            'fn main() { let v = if true { 1 } else { 2 }; println!("{}", v); }')
        assert report.stdout == ["1"]

    def test_while_loop(self):
        report = run('''
fn main() {
    let mut total = 0;
    let mut i = 0;
    while i < 5 { total += i; i += 1; }
    println!("{}", total);
}''')
        assert report.stdout == ["10"]

    def test_for_loop(self):
        report = run('''
fn main() {
    let mut total = 0;
    for i in 0..5 { total += i; }
    println!("{}", total);
}''')
        assert report.stdout == ["10"]

    def test_inclusive_range(self):
        report = run('''
fn main() {
    let mut total = 0;
    for i in 1..=3 { total += i; }
    println!("{}", total);
}''')
        assert report.stdout == ["6"]

    def test_loop_break_value(self):
        report = run('''
fn main() {
    let mut i = 0;
    let v = loop {
        i += 1;
        if i == 4 { break i * 10; }
    };
    println!("{}", v);
}''')
        assert report.stdout == ["40"]

    def test_continue(self):
        report = run('''
fn main() {
    let mut total = 0;
    for i in 0..6 {
        if i % 2 == 0 { continue; }
        total += i;
    }
    println!("{}", total);
}''')
        assert report.stdout == ["9"]

    def test_infinite_loop_hits_fuel(self):
        report = detect_ub("fn main() { loop { } }", fuel=10_000)
        assert report.errors[0].kind.value == "resource"


class TestFunctions:
    def test_call_and_return(self):
        report = run('''
fn add(a: i32, b: i32) -> i32 { a + b }
fn main() { println!("{}", add(2, 3)); }''')
        assert report.stdout == ["5"]

    def test_early_return(self):
        report = run('''
fn classify(x: i32) -> i32 {
    if x < 0 { return -1; }
    if x == 0 { return 0; }
    1
}
fn main() { println!("{} {} {}", classify(-5), classify(0), classify(9)); }''')
        assert report.stdout == ["-1 0 1"]

    def test_recursion(self):
        report = run('''
fn fib(n: i32) -> i32 {
    if n < 2 { return n; }
    fib(n - 1) + fib(n - 2)
}
fn main() { println!("{}", fib(10)); }''')
        assert report.stdout == ["55"]

    def test_fn_pointer(self):
        report = run('''
fn double(x: i32) -> i32 { x * 2 }
fn main() {
    let f = double;
    println!("{}", f(21));
}''')
        assert report.stdout == ["42"]

    def test_closure_call(self):
        report = run('''
fn main() {
    let add_one = |x| x + 1;
    println!("{}", add_one(41));
}''')
        assert report.stdout == ["42"]

    def test_closure_captures_environment(self):
        report = run('''
fn main() {
    let base = 100;
    let add_base = |x| x + base;
    println!("{}", add_base(1));
}''')
        assert report.stdout == ["101"]

    def test_missing_main_is_compile_error(self):
        report = detect_ub("fn helper() { }")
        assert report.errors[0].kind.value == "compile"


class TestDataStructures:
    def test_tuple_access(self):
        report = run(
            'fn main() { let t = (1, 2u8, true); println!("{} {} {}", t.0, t.1, t.2); }')
        assert report.stdout == ["1 2 true"]

    def test_array_index(self):
        report = run('''
fn main() {
    let arr = [10, 20, 30];
    println!("{}", arr[1]);
}''')
        assert report.stdout == ["20"]

    def test_array_oob_panics(self):
        run_expect_error('''
fn main() {
    let arr = [1, 2, 3];
    let i = 5;
    let v = arr[i];
}''', "panic")

    def test_array_repeat(self):
        report = run('''
fn main() {
    let arr = [7u8; 4];
    println!("{}", arr[3]);
}''')
        assert report.stdout == ["7"]

    def test_mutate_array_element(self):
        report = run('''
fn main() {
    let mut arr = [0; 3];
    arr[1] = 9;
    println!("{}", arr[1]);
}''')
        assert report.stdout == ["9"]

    def test_struct_field_mutation(self):
        report = run('''
struct Point { x: i32, y: i32 }
fn main() {
    let mut p = Point { x: 1, y: 2 };
    p.y = p.x + 10;
    println!("{}", p.y);
}''')
        assert report.stdout == ["11"]

    def test_nested_struct(self):
        report = run('''
struct Inner { v: i64 }
struct Outer { tag: u8, inner: Inner }
fn main() {
    let o = Outer { tag: 1, inner: Inner { v: 99 } };
    println!("{}", o.inner.v);
}''')
        assert report.stdout == ["99"]

    def test_vec_push_index(self):
        report = run('''
fn main() {
    let mut v: Vec<i32> = Vec::new();
    v.push(1);
    v.push(2);
    v.push(3);
    println!("{} {}", v.len(), v[2]);
}''')
        assert report.stdout == ["3 3"]

    def test_vec_macro(self):
        report = run('fn main() { let v = vec![5, 6, 7]; println!("{}", v[1]); }')
        assert report.stdout == ["6"]

    def test_vec_repeat_macro(self):
        report = run('fn main() { let v = vec![9; 4]; println!("{}", v.len()); }')
        assert report.stdout == ["4"]

    def test_vec_pop(self):
        report = run('''
fn main() {
    let mut v = vec![1, 2];
    let last = v.pop().unwrap();
    println!("{} {}", last, v.len());
}''')
        assert report.stdout == ["2 1"]

    def test_vec_oob_panics(self):
        run_expect_error('''
fn main() {
    let v = vec![1];
    let x = v[3];
}''', "panic")

    def test_vec_growth_preserves_elements(self):
        report = run('''
fn main() {
    let mut v: Vec<i32> = Vec::new();
    for i in 0..20 {
        v.push(i as i32);
    }
    let mut total = 0;
    for i in 0..v.len() {
        total += v[i];
    }
    println!("{}", total);
}''')
        assert report.stdout == ["190"]


class TestReferences:
    def test_shared_ref_read(self):
        report = run('''
fn main() {
    let x = 42;
    let r = &x;
    println!("{}", *r);
}''')
        assert report.stdout == ["42"]

    def test_mut_ref_write(self):
        report = run('''
fn main() {
    let mut x = 1;
    let r = &mut x;
    *r = 99;
    println!("{}", x);
}''')
        assert report.stdout == ["99"]

    def test_ref_through_function(self):
        report = run('''
fn bump(r: &mut i32) { *r += 1; }
fn main() {
    let mut x = 10;
    bump(&mut x);
    println!("{}", x);
}''')
        assert report.stdout == ["11"]

    def test_box_deref(self):
        report = run('''
fn main() {
    let b = Box::new(7);
    println!("{}", *b);
}''')
        assert report.stdout == ["7"]

    def test_raw_pointer_roundtrip(self):
        report = run('''
fn main() {
    let mut x = 3;
    let p = &mut x as *mut i32;
    unsafe { *p = 8; }
    println!("{}", x);
}''')
        assert report.stdout == ["8"]

    def test_option_unwrap_some(self):
        report = run('fn main() { let v = Some(3).unwrap(); println!("{}", v); }')
        assert report.stdout == ["3"]

    def test_option_unwrap_none_panics(self):
        run_expect_error('''
fn main() {
    let v: Vec<i32> = Vec::new();
    let mut v = v;
    let x = v.pop().unwrap();
}''', "panic")


class TestMacrosAndStrings:
    def test_println_multiple_args(self):
        report = run('fn main() { println!("{} and {}", 1, 2); }')
        assert report.stdout == ["1 and 2"]

    def test_println_escaped_braces(self):
        report = run('fn main() { println!("{{literal}} {}", 5); }')
        assert report.stdout == ["{literal} 5"]

    def test_string_literal_display(self):
        report = run('fn main() { let s = "hello"; println!("{}", s); }')
        assert report.stdout == ["hello"]

    def test_assert_passes(self):
        run('fn main() { assert!(1 + 1 == 2); }')

    def test_assert_eq_passes(self):
        run('fn main() { assert_eq!(2 + 2, 4); }')

    def test_assert_eq_fails(self):
        run_expect_error("fn main() { assert_eq!(1, 2); }", "panic")

    def test_panic_macro(self):
        run_expect_error('fn main() { panic!("boom"); }', "panic")

    def test_statics_and_consts(self):
        report = run('''
const LIMIT: i32 = 10;
static BASE: i32 = 100;
fn main() { println!("{}", LIMIT + BASE); }''')
        assert report.stdout == ["110"]

    def test_transmute_roundtrip_bytes(self):
        report = run('''
use std::mem;
fn main() {
    let n: u32 = 0x01020304;
    let bytes = unsafe { mem::transmute::<u32, [u8; 4]>(n) };
    println!("{} {}", bytes[0], bytes[3]);
}''')
        assert report.stdout == ["4 1"]

    def test_from_le_bytes(self):
        report = run('''
fn main() {
    let n = u32::from_le_bytes([0x17, 0x07, 0, 0]);
    println!("{}", n);
}''')
        assert report.stdout == [str(0x0717)]

    def test_size_of(self):
        report = run('''
use std::mem;
fn main() { println!("{}", mem::size_of::<u64>()); }''')
        assert report.stdout == ["8"]
