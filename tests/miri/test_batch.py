"""Batched detector entry point: dedup, alignment, stats, verifier memo."""

import pytest

from repro.miri import (BatchVerifier, DETECTOR_STATS, detect_ub,
                        detect_ub_batch, run_program)
from repro.lang.parser import parse_program

BUGGY = """
fn main() {
    let b = Box::new(7);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
}
"""

CLEAN = """
fn main() {
    let x = 41;
    println!("{}", x + 1);
}
"""

PANICKY = """
fn main() {
    let v: Vec<i64> = Vec::new();
    let x = v[3];
}
"""


def _verdict(report):
    return (report.passed, [(e.kind, e.message) for e in report.errors],
            list(report.stdout))


class TestDetectUbBatch:
    def test_positional_alignment_matches_detect_ub(self):
        sources = [BUGGY, CLEAN, PANICKY]
        batch = detect_ub_batch(sources)
        singles = [detect_ub(source) for source in sources]
        assert [_verdict(r) for r in batch] == \
            [_verdict(r) for r in singles]

    def test_duplicates_get_defensive_copies(self):
        # Duplicates are interpreted once but each position owns its
        # report: mutating one must never corrupt another (the aliasing
        # the PR-4 implementation documented away is gone).
        batch = detect_ub_batch([CLEAN, BUGGY, CLEAN, CLEAN])
        assert batch[0] is not batch[2] and batch[2] is not batch[3]
        assert _verdict(batch[0]) == _verdict(batch[2]) == _verdict(batch[3])
        assert batch[0].passed and not batch[1].passed
        batch[2].stdout.append("corrupted")
        batch[2].errors.append(batch[1].errors[0])
        assert "corrupted" not in batch[0].stdout
        assert batch[0].passed and batch[3].passed and not batch[3].errors

    def test_duplicates_interpret_once(self):
        DETECTOR_STATS.reset()
        detect_ub_batch([CLEAN, CLEAN, BUGGY, CLEAN])
        assert DETECTOR_STATS.requests == 4
        assert DETECTOR_STATS.runs == 2

    def test_collect_mode_respected(self):
        report = detect_ub_batch([BUGGY], collect=True)[0]
        assert report.error_count == detect_ub(BUGGY,
                                               collect=True).error_count

    def test_parse_errors_surface_per_source(self):
        batch = detect_ub_batch(["fn main( {", CLEAN])
        assert not batch[0].passed
        assert batch[1].passed

    def test_program_inputs_are_not_deduplicated(self):
        program = parse_program(CLEAN)
        batch = detect_ub_batch([program, program])
        assert batch[0] is not batch[1]
        assert batch[0].passed and batch[1].passed

    def test_empty_batch(self):
        assert detect_ub_batch([]) == []


class TestRunProgram:
    def test_matches_detect_ub(self):
        program = parse_program(PANICKY)
        assert _verdict(run_program(program)) == _verdict(detect_ub(PANICKY))


class TestBatchVerifier:
    def test_memo_answers_repeats_without_running(self):
        verifier = BatchVerifier()
        first = verifier.verify(CLEAN)
        again = verifier.verify(CLEAN)
        assert again is first
        assert verifier.requests == 2
        assert verifier.runs == 1

    def test_verdicts_match_detect_ub(self):
        verifier = BatchVerifier(collect=True)
        assert _verdict(verifier.verify(BUGGY)) == \
            _verdict(detect_ub(BUGGY, collect=True))

    def test_verify_batch_runs_distinct_sources_once(self):
        verifier = BatchVerifier()
        reports = verifier.verify_batch([CLEAN, BUGGY, CLEAN])
        assert reports[0] is reports[2]
        assert verifier.requests == 3
        assert verifier.runs == 2
        verifier.verify_batch([BUGGY, PANICKY])
        assert verifier.runs == 3

    def test_global_stats_count_memo_hits_as_requests(self):
        verifier = BatchVerifier()
        DETECTOR_STATS.reset()
        verifier.verify(CLEAN)
        verifier.verify(CLEAN)
        assert DETECTOR_STATS.requests == 2
        assert DETECTOR_STATS.runs == 1


class TestSemanticScoringMemo:
    def test_repeated_reference_interprets_once(self):
        from repro.core.evaluate import semantically_acceptable
        # Warm the process-wide memo first so the counting below is exact
        # regardless of what earlier tests scored.
        semantically_acceptable(CLEAN, CLEAN)
        DETECTOR_STATS.reset()
        assert semantically_acceptable(CLEAN, CLEAN)
        assert DETECTOR_STATS.requests == 2
        assert DETECTOR_STATS.runs == 0

    def test_acceptability_unchanged(self):
        from repro.core.evaluate import semantically_acceptable
        assert semantically_acceptable(CLEAN, CLEAN)
        assert not semantically_acceptable(BUGGY, CLEAN)
        assert not semantically_acceptable(PANICKY, CLEAN)
