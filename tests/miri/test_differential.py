"""Differential gate: the bytecode VM is byte-identical to the tree-walker.

Every source the project can produce — the five hand-written case modules,
the compile-error corpus, and 500 seeded generator mutants — runs through
both engines in both collect modes, and the reports must match byte for
byte: error kind, message, span, stdout, and the fuel-step counter.  Any
divergence found here means ``CACHE_EPOCH`` must be bumped; the target is
that this suite never fires.
"""

import pytest

from repro.corpus.dataset import load_compile_dataset, load_dataset
from repro.corpus.generator import generate_sources
from repro.lang.parser import parse_program
from repro.miri import DETECTOR_STATS, detect_ub, detect_ub_batch
from repro.miri.interp import run_program
from repro.miri.vm import check_divergence, report_signature
import repro.miri.borrows as borrows

GENERATED_COUNT = 500
GENERATED_SEED = 12345

MEMORY_HEAVY = """
fn main() {
    let mut values = [0i64; 4];
    let first = &mut values[0];
    *first = 10;
    let b = Box::new(77i64);
    let p = &*b;
    let x = *p + values[0];
    let second = &values[1];
    let y = *second + x;
    println!("{}", y);
}
"""

LOOP_HEAVY = """
fn main() {
    let mut total = 0i64;
    for i in 0..25 {
        if i % 2 == 0 {
            total += i;
        }
    }
    while total > 10 {
        total -= 7;
    }
    println!("{}", total);
}
"""


@pytest.fixture(scope="module")
def corpus_sources():
    sources = []
    for case in load_dataset().cases:
        sources.append(case.source)
        sources.append(case.fixed_source)
    for case in load_compile_dataset().cases:
        sources.append(case.source)
        sources.append(case.fixed_source)
    sources.extend(generate_sources(GENERATED_COUNT, GENERATED_SEED))
    return sources


class TestFullCorpusByteIdentity:
    @pytest.mark.parametrize("collect", [False, True],
                             ids=["first-ub", "collect"])
    def test_every_source_matches(self, corpus_sources, collect):
        divergences = []
        for index, source in enumerate(corpus_sources):
            divergence = check_divergence(source, f"corpus[{index}]",
                                          collect=collect)
            if divergence is not None:
                divergences.append(divergence)
        assert not divergences, "\n\n".join(
            d.render() for d in divergences[:5])

    def test_exec_metrics_identical(self):
        tree = detect_ub(LOOP_HEAVY, engine="tree")
        vm = detect_ub(LOOP_HEAVY, engine="vm")
        assert tree.steps == vm.steps > 0
        assert tree.stdout == vm.stdout
        assert report_signature(tree) == report_signature(vm)

    def test_batch_paths_identical(self, corpus_sources):
        sample = corpus_sources[:40]
        tree = detect_ub_batch(sample, engine="tree")
        vm = detect_ub_batch(sample, engine="vm")
        assert [report_signature(r) for r in tree] == \
            [report_signature(r) for r in vm]


class TestRunAccounting:
    def _sources(self, salt):
        # Unique literals so neither the compile memo nor any fingerprint
        # state from other tests can absorb a run.
        return [
            f"fn main() {{ let x = {salt}i64; println!(\"{{}}\", x); }}",
            f"fn main() {{ let v: Vec<i64> = Vec::new(); let x = v[{salt}]; }}",
            f"fn main() {{ let x = {salt}i64; let y = x; println!(\"{{}}\", x + y); }}",
            f"fn main() {{ let x = {salt}i64; println!(\"{{}}\", x); }}",
        ]

    def test_identical_accounting_across_engines(self):
        DETECTOR_STATS.reset()
        detect_ub_batch(self._sources(9001), engine="tree")
        tree = DETECTOR_STATS.snapshot()
        DETECTOR_STATS.reset()
        detect_ub_batch(self._sources(9002), engine="vm")
        vm = DETECTOR_STATS.snapshot()

        for key in ("requests", "runs", "fingerprint_hits",
                    "case_memo_hits"):
            assert tree[key] == vm[key], key
        # The engines differ only in the engine-specific counters.
        assert tree["vm_runs"] == 0 and tree["compiles"] == 0
        assert vm["vm_runs"] == vm["runs"]
        assert vm["compiles"] == 3  # unique sources (the 4th is a dupe)
        DETECTOR_STATS.reset()


class TestDivergenceReport:
    def test_render_prints_both_engines_outcomes(self):
        # Construct a synthetic divergence (none exist organically) and
        # check the triage report shows each engine's steps, stdout, and
        # errors side by side.
        from repro.miri.vm import Divergence
        tree = detect_ub(LOOP_HEAVY, engine="tree")
        vm = detect_ub(
            "fn main() { let v: Vec<i64> = Vec::new(); let x = v[1]; }",
            engine="vm")
        text = Divergence("triage-case", tree, vm).render()
        assert "engine divergence on triage-case" in text
        assert f"tree: steps={tree.steps}" in text
        assert f"vm:   steps={vm.steps}" in text
        assert repr(tree.stdout) in text and repr(vm.stdout) in text
        for error in vm.errors:
            assert error.render() in text

    def test_check_divergence_none_on_agreement(self):
        assert check_divergence(LOOP_HEAVY, "loop-heavy") is None


class TestBorrowTagDeterminism:
    def test_back_to_back_runs_share_tag_sequences(self, monkeypatch):
        program = parse_program(MEMORY_HEAVY)
        real_fresh_tag = borrows.fresh_tag
        sequences = []

        def recording_fresh_tag():
            tag = real_fresh_tag()
            sequences[-1].append(tag)
            return tag

        monkeypatch.setattr(borrows, "fresh_tag", recording_fresh_tag)
        reports = []
        for engine in ("tree", "vm"):
            for _ in range(2):
                sequences.append([])
                reports.append(run_program(program, engine=engine))

        assert sequences[0], "case must exercise borrow tags"
        assert sequences[0] == sequences[1] == sequences[2] == sequences[3]
        first = report_signature(reports[0])
        assert all(report_signature(r) == first for r in reports[1:])
