"""Unit tests for vector-clock data-race detection."""

import pytest

from repro.miri.races import RaceDetector, RaceError, VectorClock


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock()
        assert clock.get(0) == 0
        clock.tick(0)
        assert clock.get(0) == 1

    def test_join_takes_pointwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({0: 1, 1: 5, 2: 2})
        a.join(b)
        assert a.times == {0: 3, 1: 5, 2: 2}

    def test_dominates(self):
        clock = VectorClock({0: 3})
        assert clock.dominates(0, 2)
        assert clock.dominates(0, 3)
        assert not clock.dominates(0, 4)
        assert not clock.dominates(1, 1)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1


class TestRaceDetection:
    def test_same_thread_never_races(self):
        det = RaceDetector()
        det.on_write(0, 1, 0, 4)
        det.on_read(0, 1, 0, 4)
        det.on_write(0, 1, 0, 4)

    def test_parent_before_spawn_is_ordered(self):
        det = RaceDetector()
        det.on_write(0, 1, 0, 4)
        child = det.spawn(0)
        det.on_read(child, 1, 0, 4)  # ordered by the spawn edge

    def test_unsynchronized_write_write_races(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 4)
        with pytest.raises(RaceError):
            det.on_write(0, 1, 0, 4)

    def test_unsynchronized_read_write_races(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_read(child, 1, 0, 4)
        with pytest.raises(RaceError):
            det.on_write(0, 1, 0, 4)

    def test_write_then_concurrent_read_races(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 4)
        with pytest.raises(RaceError):
            det.on_read(0, 1, 0, 4)

    def test_join_establishes_order(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 4)
        det.join(0, child)
        det.on_write(0, 1, 0, 4)  # no race after join

    def test_disjoint_bytes_do_not_race(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 4)
        det.on_write(0, 1, 4, 4)  # different bytes

    def test_different_allocations_do_not_race(self):
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 4)
        det.on_write(0, 2, 0, 4)

    def test_mutex_acquire_release_orders_accesses(self):
        det = RaceDetector()
        child = det.spawn(0)
        # Child writes under the lock, then releases.
        det.acquire(child, 99)
        det.on_write(child, 1, 0, 4)
        det.release(child, 99)
        # Parent acquires the same lock: child's write is now ordered.
        det.acquire(0, 99)
        det.on_write(0, 1, 0, 4)

    def test_two_children_race_with_each_other(self):
        det = RaceDetector()
        c1 = det.spawn(0)
        c2 = det.spawn(0)
        det.on_write(c1, 1, 0, 1)
        with pytest.raises(RaceError):
            det.on_write(c2, 1, 0, 1)

    def test_race_error_carries_datarace_kind(self):
        from repro.miri.errors import UbKind
        det = RaceDetector()
        child = det.spawn(0)
        det.on_write(child, 1, 0, 1)
        with pytest.raises(RaceError) as err:
            det.on_write(0, 1, 0, 1)
        assert err.value.error.kind is UbKind.DATA_RACE
