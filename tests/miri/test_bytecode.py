"""Property tests for the bytecode compiler itself.

Three guarantees back the engine switch: compiling is a deterministic
fixed point (recompiling a program reproduces the same code and the same
disassembly), every instruction's span maps back into the source text it
was compiled from, and compiled programs survive a pickle round-trip
unchanged — the property the process-pool shard dispatch relies on.
"""

import pickle

import pytest

from repro.corpus.dataset import load_dataset
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse_program
from repro.miri.bytecode import (
    BytecodeError,
    compile_program,
    compile_source,
    disassemble,
    disassemble_program,
)
from repro.miri.interp import run_program
from repro.miri.vm import report_signature


@pytest.fixture(scope="module")
def compiled_corpus():
    pairs = []
    for case in load_dataset().cases:
        for source in (case.source, case.fixed_source):
            try:
                program = parse_program(source)
            except (ParseError, LexError):
                continue
            pairs.append((source, program, compile_program(program, source)))
    assert pairs
    return pairs


class TestCompileFixedPoint:
    def test_recompile_reproduces_code_and_disassembly(self, compiled_corpus):
        for source, program, compiled in compiled_corpus:
            again = compile_program(program, source)
            assert disassemble_program(again) == \
                disassemble_program(compiled)
            assert again.fn_codes == compiled.fn_codes
            assert again.closure_codes == compiled.closure_codes
            assert again.init_codes == compiled.init_codes

    def test_disassembly_is_deterministic_text(self, compiled_corpus):
        source, program, compiled = compiled_corpus[0]
        listing = disassemble_program(compiled)
        assert listing == disassemble_program(compiled)
        assert listing.strip()
        for name, code in compiled.codes():
            assert name in listing
            assert disassemble(code) in listing


class TestSpansMapIntoSource:
    def test_every_instruction_span_within_bounds(self, compiled_corpus):
        for source, program, compiled in compiled_corpus:
            size = len(source)
            for name, code in compiled.codes():
                for op, arg, span in code.instrs:
                    assert 0 <= span.start <= span.end <= size, \
                        f"{name}: span {span} outside source"

    def test_handler_ranges_within_code(self, compiled_corpus):
        for source, program, compiled in compiled_corpus:
            for name, code in compiled.codes():
                count = len(code.instrs)
                for handler in code.handlers:
                    assert 0 <= handler.start <= handler.end <= count
                    assert 0 <= handler.target <= count


class TestPickleRoundTrip:
    def test_round_trips_to_equal_program(self, compiled_corpus):
        for source, program, compiled in compiled_corpus[:20]:
            clone = pickle.loads(pickle.dumps(compiled))
            assert clone.source == compiled.source
            assert clone.fn_codes == compiled.fn_codes
            assert clone.closure_codes == compiled.closure_codes
            assert clone.init_codes == compiled.init_codes

    def test_unpickled_bytecode_runs_identically(self, compiled_corpus):
        for source, program, compiled in compiled_corpus[:10]:
            clone = pickle.loads(pickle.dumps(compiled))
            original = run_program(compiled.program, engine="vm",
                                   compiled=compiled)
            shipped = run_program(clone.program, engine="vm", compiled=clone)
            assert report_signature(shipped) == report_signature(original)


class TestCompileSourceMemo:
    def test_memo_returns_same_object_for_same_text(self):
        source = "fn main() { let probe = 424243i64; println!(\"{}\", probe); }"
        assert compile_source(source) is compile_source(source)

    def test_lowering_failure_raises_bytecode_error(self):
        # An expression kind the compiler has no rule for must raise
        # BytecodeError (or compile to an explicit runtime raise), never
        # silently produce wrong code; exercised via the public fallback.
        from repro.miri import detect_ub
        report_vm = detect_ub("fn main() { let x = 1i64; }", engine="vm")
        report_tree = detect_ub("fn main() { let x = 1i64; }", engine="tree")
        assert report_signature(report_vm) == report_signature(report_tree)

    def test_compile_program_wraps_internal_errors(self):
        with pytest.raises(BytecodeError):
            compile_program(None)  # not a Program: must not crash opaquely
