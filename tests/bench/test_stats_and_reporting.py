"""Tests for the experiment-harness utilities."""

import pytest

from repro.bench.experiments import SystemResults, CaseResult, make_system
from repro.bench.reporting import category_label, render_bars, render_table
from repro.bench.stats import geometric_mean, mean, stdev, wilson_interval
from repro.miri.errors import UbKind


class TestStats:
    def test_wilson_basic(self):
        ci = wilson_interval(50, 100)
        assert ci.rate == pytest.approx(0.5)
        assert ci.low < 0.5 < ci.high

    def test_wilson_zero_n(self):
        ci = wilson_interval(0, 0)
        assert ci.rate == 0.0 and ci.n == 0

    def test_wilson_extremes_clamped(self):
        full = wilson_interval(10, 10)
        empty = wilson_interval(0, 10)
        assert full.high == 1.0 and full.rate == 1.0
        assert empty.low == 0.0 and empty.rate == 0.0

    def test_wilson_narrower_with_more_samples(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_mean_stdev(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0
        assert stdev([2, 2, 2]) == 0
        assert stdev([1]) == 0
        assert stdev([1, 3]) == pytest.approx(1.4142, abs=1e-3)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestReporting:
    def test_render_table_aligns_columns(self):
        table = render_table(["a", "b"], [["1", "22"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].index("b") == lines[2].index("22")

    def test_render_bars(self):
        text = render_bars({"x": 0.5, "y": 1.0}, width=10)
        assert "#" in text
        assert "100.0%" in text

    def test_category_labels_match_paper(self):
        assert category_label(UbKind.DANGLING_POINTER) == "danglingpointer"
        assert category_label(UbKind.FUNC_CALL) == "func.call"
        assert category_label(UbKind.ALLOC) == "alloc"


class TestSystemResults:
    def _result(self, category, passed, acceptable, seconds=10.0):
        return CaseResult(
            case="c", category=category, passed=passed,
            acceptable=acceptable, seconds=seconds, tokens=100, llm_calls=2,
            used_knowledge_base=False, used_feedback=False,
            hallucinations=0, rollbacks=0, solutions_tried=1)

    def test_rates(self):
        results = SystemResults("sys")
        results.results = [
            self._result(UbKind.ALLOC, True, True),
            self._result(UbKind.ALLOC, True, False),
            self._result(UbKind.PANIC, False, False),
            self._result(UbKind.PANIC, True, True),
        ]
        assert results.pass_rate() == pytest.approx(0.75)
        assert results.exec_rate() == pytest.approx(0.5)

    def test_by_category(self):
        results = SystemResults("sys")
        results.results = [
            self._result(UbKind.ALLOC, True, True),
            self._result(UbKind.PANIC, False, False),
        ]
        grouped = results.category_pass_rates()
        assert grouped[UbKind.ALLOC] == 1.0
        assert grouped[UbKind.PANIC] == 0.0

    def test_empty_results(self):
        results = SystemResults("sys")
        assert results.pass_rate() == 0.0
        assert results.exec_rate() == 0.0


class TestMakeSystem:
    def test_known_kinds(self):
        for kind in ("llm_only", "rustassistant", "rustbrain",
                     "rustbrain_nokb", "rustbrain_nofeedback",
                     "rustbrain_norollback", "rustbrain_initial_rollback",
                     "rustbrain_nopruning"):
            system = make_system(kind, "gpt-4", seed=1)
            assert hasattr(system, "repair")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_system("quantum", "gpt-4")

    def test_overrides_applied(self):
        system = make_system("rustbrain", "gpt-4", n_solutions=3)
        assert system.config.n_solutions == 3

    def test_nokb_has_no_kb(self):
        system = make_system("rustbrain_nokb", "gpt-4")
        assert system.kb is None
