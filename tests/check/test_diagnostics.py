"""Serialization, ordering, and rendering tests for checker diagnostics."""

import json

from repro.check import (DIAGNOSTICS_SCHEMA, ERROR_CODES, CheckReport,
                         Diagnostic, Label, Suggestion, apply_suggestion,
                         check_source, sort_diagnostics)
from repro.lang.span import Span

SOURCE = 'fn main() {\n    let flag: bool = 3;\n    println!("{}", flag);\n}\n'


def _diag(code="E0308", start=0, message="mismatched types"):
    return Diagnostic(code=code, message=message,
                      span=Span(start, start + 1, 1, start + 1))


class TestSerialization:
    def test_report_round_trips_through_dict(self):
        report = check_source(SOURCE)
        assert not report.ok
        payload = report.to_dict()
        assert payload["schema"] == DIAGNOSTICS_SCHEMA
        assert payload["count"] == len(report.diagnostics)
        back = [Diagnostic.from_dict(entry)
                for entry in payload["diagnostics"]]
        assert back == list(report.diagnostics)

    def test_payload_is_json_and_machine_readable(self):
        payload = check_source(SOURCE).to_dict()
        decoded = json.loads(json.dumps(payload, sort_keys=True))
        entry = decoded["diagnostics"][0]
        assert entry["code"] in ERROR_CODES
        assert {"start", "end", "line", "col"} <= set(entry["span"])

    def test_labels_notes_suggestions_survive(self):
        diag = Diagnostic(
            code="E0061", message="wrong arg count",
            span=Span(5, 8, 1, 6),
            labels=(Label(Span(0, 2, 1, 1), "defined here"),),
            notes=("expected 2 arguments",),
            suggestions=(Suggestion("add the missing argument",
                                    Span(7, 7, 1, 8), ", 0"),),
        )
        assert Diagnostic.from_dict(diag.to_dict()) == diag


class TestOrdering:
    def test_sorted_by_span_then_code_then_message(self):
        diags = [_diag("E0425", start=9), _diag("E0308", start=9),
                 _diag("E0308", start=2, message="z"),
                 _diag("E0308", start=2, message="a")]
        ordered = sort_diagnostics(diags)
        assert [(d.span.start, d.code, d.message) for d in ordered] == [
            (2, "E0308", "a"), (2, "E0308", "z"),
            (9, "E0308", "mismatched types"), (9, "E0425", "mismatched types"),
        ]


class TestRendering:
    def test_clean_report_renders_pass_line(self):
        report = CheckReport(source="fn main() {}\n")
        assert report.ok
        assert "check passed" in report.render()

    def test_failing_report_renders_code_caret_and_help(self):
        rendered = check_source(SOURCE).render()
        assert "error[E0308]" in rendered
        assert "^" in rendered
        assert "= help:" in rendered
        assert "check failed: 1 diagnostic" in rendered

    def test_every_code_has_a_title(self):
        assert all(isinstance(title, str) and title
                   for title in ERROR_CODES.values())


class TestApplySuggestion:
    def test_splices_replacement_at_span(self):
        report = check_source(SOURCE)
        suggestion = report.diagnostics[0].suggestions[0]
        repaired = apply_suggestion(SOURCE, suggestion)
        assert "3 != 0" in repaired
        assert check_source(repaired).ok
