"""Golden and zero-false-positive tests for the static checker."""

import pytest

from repro.check import apply_suggestion, check_source
from repro.corpus import generate_sources, load_compile_dataset, load_dataset

#: Codes whose first suggestion, applied repeatedly, must converge to a
#: checks-clean program (the ``compile_fix`` engine relies on this).
SUGGESTION_REPAIRABLE = ("E0061", "E0308", "E0382", "E0384", "E0425",
                        "E0512", "E0594")

COMPILE_CASES = {case.name: case for case in load_compile_dataset()}


class TestGoldenDiagnostics:
    """Every hand-written compile case trips exactly its labelled code."""

    @pytest.mark.parametrize("name", sorted(COMPILE_CASES))
    def test_buggy_source_trips_labelled_code(self, name):
        case = COMPILE_CASES[name]
        report = check_source(case.source)
        assert not report.ok
        assert case.expected_code in report.codes()

    @pytest.mark.parametrize("name", sorted(COMPILE_CASES))
    def test_fixed_source_checks_clean(self, name):
        case = COMPILE_CASES[name]
        report = check_source(case.fixed_source)
        assert report.ok, report.render()

    def test_every_error_code_family_covered(self):
        covered = {case.expected_code for case in COMPILE_CASES.values()}
        from repro.check import ERROR_CODES
        assert covered == set(ERROR_CODES)


class TestSpans:
    def test_unknown_value_span_points_at_the_typo(self):
        case = COMPILE_CASES["compile_unknown_value"]
        diag = check_source(case.source).diagnostics[0]
        assert diag.code == "E0425"
        start, end = diag.span.start, diag.span.end
        assert case.source[start:end] == "cuont"
        assert (diag.span.line, diag.span.col) == (3, 17)

    def test_immutable_reassign_span_covers_the_assignment_target(self):
        case = COMPILE_CASES["compile_immutable_reassign"]
        diag = check_source(case.source).diagnostics[0]
        assert diag.code == "E0384"
        assert case.source[diag.span.start:diag.span.end] == "x"
        assert diag.span.line == 3

    def test_syntax_error_span_lands_on_line_one(self):
        case = COMPILE_CASES["compile_syntax_unclosed"]
        diag = check_source(case.source).diagnostics[0]
        assert diag.code == "E0001"
        assert diag.span.line == 1


class TestSuggestionConvergence:
    @pytest.mark.parametrize("code", SUGGESTION_REPAIRABLE)
    def test_first_suggestion_loop_reaches_clean(self, code):
        case = next(c for c in COMPILE_CASES.values()
                    if c.expected_code == code)
        current = case.source
        for _round in range(5):
            report = check_source(current)
            if report.ok:
                break
            suggestions = [s for diag in report.diagnostics
                           for s in diag.suggestions]
            assert suggestions, report.render()
            current = apply_suggestion(current, suggestions[0])
        assert check_source(current).ok

    def test_diagnose_only_codes_offer_no_suggestion(self):
        case = COMPILE_CASES["compile_bool_plus_int"]
        report = check_source(case.source)
        assert all(not diag.suggestions for diag in report.diagnostics)


class TestZeroFalsePositives:
    """The checker doubles as a standing corpus oracle: every dynamic-UB
    corpus source — buggy AND fixed — must check clean.  The corpus'
    defects are runtime UB; a diagnostic here is a checker bug."""

    @pytest.mark.parametrize("side", ["source", "fixed_source"])
    def test_corpus_sources_check_clean(self, side):
        noisy = [case.name for case in load_dataset()
                 if not check_source(getattr(case, side)).ok]
        assert noisy == []

    @pytest.mark.parametrize("seed", [11, 77])
    def test_generated_sources_parse_and_check_clean(self, seed):
        for index, source in enumerate(generate_sources(30, seed)):
            report = check_source(source)
            assert report.ok, (seed, index, report.render())
            assert not any(d.code == "E0001" for d in report.diagnostics)
