"""Tests for AST vectorization, the knowledge base, and Algorithm 1."""

import numpy as np
import pytest

from repro.core.knowledge import (
    KnowledgeBase,
    VECTOR_DIM,
    ast_tokens,
    cosine,
    vectorize,
)
from repro.core.pruning import prune_program, pruning_ratio
from repro.corpus.dataset import load_dataset
from repro.lang import parse_program
from repro.miri import detect_ub


class TestVectorize:
    def test_unit_norm(self):
        program = parse_program("fn main() { let x = 1 + 2; }")
        vector = vectorize(program)
        assert vector.shape == (VECTOR_DIM,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_deterministic(self):
        program = parse_program("fn main() { let x = 1; }")
        assert np.allclose(vectorize(program),
                           vectorize(parse_program("fn main() { let x = 1; }")))

    def test_similar_programs_closer_than_different(self):
        a = parse_program('''
fn main() {
    let b = Box::new(1);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
}''')
        b = parse_program('''
fn main() {
    let owner = Box::new(99);
    let raw = Box::into_raw(owner);
    unsafe { drop(Box::from_raw(raw)); }
    let out = unsafe { *raw };
}''')
        c = parse_program('''
static M: Mutex<i32> = Mutex::new(0);
fn main() {
    let g = M.lock();
    let h = M.lock();
}''')
        assert cosine(vectorize(a), vectorize(b)) > cosine(vectorize(a),
                                                           vectorize(c))

    def test_tokens_capture_unsafe(self):
        program = parse_program("fn main() { unsafe { } }")
        assert "kw:unsafe" in ast_tokens(program)

    def test_tokens_capture_methods(self):
        program = parse_program("fn main() { v.set_len(3); }")
        assert "m:set_len" in ast_tokens(program)


class TestPruning:
    def test_keeps_unsafe_statements(self):
        program = parse_program('''
fn main() {
    let aux_noise = 1 + 2;
    let aux_more = aux_noise * 3;
    let x = 5;
    let p = &x as *const i32;
    let v = unsafe { *p };
}''')
        pruned = prune_program(program)
        text_names = {stmt.name for stmt in pruned.fn("main").body.stmts
                      if hasattr(stmt, "name")}
        assert "p" in text_names
        assert "x" in text_names            # definition chain kept
        assert "aux_noise" not in text_names

    def test_keeps_definition_chains(self):
        program = parse_program('''
fn main() {
    let base = 10;
    let addr = &base as *const i32 as usize;
    let q = addr as *const i32;
    let v = unsafe { *q };
}''')
        pruned = prune_program(program)
        names = {stmt.name for stmt in pruned.fn("main").body.stmts
                 if hasattr(stmt, "name")}
        assert {"base", "addr", "q"} <= names

    def test_pruning_ratio_positive_on_noisy_code(self):
        case = load_dataset().cases[0]  # corpus cases carry distractors
        program = parse_program(case.source)
        pruned = prune_program(program)
        assert pruning_ratio(program, pruned) > 0.0

    def test_pruning_never_breaks_parse(self):
        from repro.lang import print_program
        for case in list(load_dataset())[:10]:
            program = parse_program(case.source)
            pruned = prune_program(program)
            # Pruned programs are for embedding, but must stay well-formed.
            reparsed = parse_program(print_program(pruned))
            assert reparsed.fn("main") is not None


class TestKnowledgeBase:
    def test_default_kb_nonempty(self):
        kb = KnowledgeBase.default()
        assert len(kb) >= 30

    def test_coverage_shrinks_kb(self):
        full = KnowledgeBase.default(coverage=1.0)
        half = KnowledgeBase.default(coverage=0.5)
        assert len(half) < len(full)
        assert len(half) >= 1

    def test_query_returns_scored_entries(self):
        kb = KnowledgeBase.default()
        case = load_dataset().get("uninit_assume_init_1")
        program = parse_program(case.source)
        vector = vectorize(prune_program(program))
        matches = kb.query(vector, k=3)
        assert matches
        scores = [score for _entry, score in matches]
        assert scores == sorted(scores, reverse=True)

    def test_retrieval_hits_viable_rules_often(self):
        kb = KnowledgeBase.default()
        dataset = load_dataset()
        hits = 0
        for case in dataset:
            program = parse_program(case.source)
            report = detect_ub(case.source)
            vector = vectorize(prune_program(program, report.errors))
            hints = kb.hint_rules(vector, k=3)
            hits += any(hint in set(case.strategy_rules()) for hint in hints)
        assert hits / len(dataset) >= 0.65

    def test_pruned_retrieval_beats_unpruned(self):
        """The Algorithm-1 claim: pruning removes noise, improving matches."""
        kb_pruned = KnowledgeBase.default(use_pruning=True)
        kb_raw = KnowledgeBase.default(use_pruning=False)
        dataset = load_dataset()
        pruned_hits = raw_hits = 0
        for case in dataset:
            program = parse_program(case.source)
            report = detect_ub(case.source)
            viable = set(case.strategy_rules())
            v_pruned = vectorize(prune_program(program, report.errors))
            v_raw = vectorize(program)
            pruned_hits += any(h in viable
                               for h in kb_pruned.hint_rules(v_pruned, 3))
            raw_hits += any(h in viable for h in kb_raw.hint_rules(v_raw, 3))
        assert pruned_hits > raw_hits

    def test_query_counts_tracked(self):
        kb = KnowledgeBase.default()
        vector = vectorize(parse_program("fn main() { }"))
        kb.query(vector)
        kb.query(vector)
        assert kb.queries == 2
