"""End-to-end tests for the RustBrain pipeline and its agents."""

import pytest

from repro.core import RustBrain, RustBrainConfig, semantically_acceptable
from repro.core.agents.rollback import RollbackAgent, RollbackPolicy
from repro.core.feedback import FeedbackMemory
from repro.core.solution import Step, decompose
from repro.corpus.dataset import load_dataset
from repro.lang import parse_program
from repro.miri import detect_ub

DATASET = load_dataset()


class TestRollbackAgent:
    def _program(self):
        return parse_program("fn main() { }")

    def test_adaptive_keeps_best_state(self):
        p0, p1, p2 = self._program(), self._program(), self._program()
        agent = RollbackAgent(RollbackPolicy.ADAPTIVE, p0, 3)
        agent.observe(p1, 1)     # improvement
        agent.observe(p2, 5)     # hallucination growth
        base, errors = agent.next_base(p2, 5)
        assert base is p1
        assert errors == 1
        assert agent.rollbacks == 1

    def test_initial_discards_partial_progress(self):
        p0, p1, p2 = self._program(), self._program(), self._program()
        agent = RollbackAgent(RollbackPolicy.INITIAL, p0, 3)
        agent.observe(p1, 1)
        agent.observe(p2, 5)
        base, errors = agent.next_base(p2, 5)
        assert base is p0
        assert errors == 3

    def test_none_never_rolls_back(self):
        p0, p1 = self._program(), self._program()
        agent = RollbackAgent(RollbackPolicy.NONE, p0, 3)
        agent.observe(p1, 9)
        base, errors = agent.next_base(p1, 9)
        assert base is p1
        assert agent.rollbacks == 0

    def test_error_sequence_recorded(self):
        p0 = self._program()
        agent = RollbackAgent(RollbackPolicy.ADAPTIVE, p0, 3)
        for count in (1, 4, 2):
            agent.observe(self._program(), count)
        assert agent.error_sequence == [3, 1, 4, 2]


class TestFeedbackMemory:
    def test_learn_and_recall(self):
        import numpy as np
        from repro.miri.errors import UbKind
        memory = FeedbackMemory()
        vector = np.ones(8) / np.sqrt(8)
        memory.learn(vector, UbKind.UNINIT, ["write_before_assume_init"])
        recalled = memory.recall(vector, UbKind.UNINIT)
        assert recalled == ["write_before_assume_init"]

    def test_category_mismatch_not_recalled(self):
        import numpy as np
        from repro.miri.errors import UbKind
        memory = FeedbackMemory()
        vector = np.ones(8) / np.sqrt(8)
        memory.learn(vector, UbKind.UNINIT, ["rule"])
        assert memory.recall(vector, UbKind.ALLOC) is None

    def test_dissimilar_vector_not_recalled(self):
        import numpy as np
        from repro.miri.errors import UbKind
        memory = FeedbackMemory()
        a = np.zeros(8); a[0] = 1.0
        b = np.zeros(8); b[4] = 1.0
        memory.learn(a, UbKind.UNINIT, ["rule"])
        assert memory.recall(b, UbKind.UNINIT) is None

    def test_duplicate_learning_reinforces(self):
        import numpy as np
        from repro.miri.errors import UbKind
        memory = FeedbackMemory()
        vector = np.ones(8) / np.sqrt(8)
        memory.learn(vector, UbKind.UNINIT, ["rule"])
        memory.learn(vector, UbKind.UNINIT, ["rule"])
        assert len(memory) == 1
        assert memory.entries[0].wins == 2

    def test_stats_track_hits(self):
        import numpy as np
        from repro.miri.errors import UbKind
        memory = FeedbackMemory()
        vector = np.ones(8) / np.sqrt(8)
        memory.recall(vector, UbKind.UNINIT)
        memory.learn(vector, UbKind.UNINIT, ["rule"])
        memory.recall(vector, UbKind.UNINIT)
        assert memory.stats.lookups == 2
        assert memory.stats.hits == 1


class TestSolutionDecomposition:
    def test_steps_tagged_with_agents(self):
        solutions = decompose([["replace_set_len_with_resize",
                                "guard_index_with_len_check",
                                "move_drop_after_last_use"]])
        agents = [step.agent for step in solutions[0].steps]
        assert agents == ["safe_replacement", "assertion", "modification"]

    def test_guided_rules_marked(self):
        solutions = decompose([["a_rule", "kb_rule"]],
                              guided_rules={"kb_rule"})
        assert not solutions[0].steps[0].guided
        assert solutions[0].steps[1].guided


class TestRustBrainPipeline:
    def test_clean_program_passes_through(self):
        brain = RustBrain(RustBrainConfig(seed=1))
        outcome = brain.repair("fn main() { let x = 1; }")
        assert outcome.passed
        assert outcome.solutions_tried == 0

    def test_repairs_simple_case(self):
        case = DATASET.get("uninit_assume_init_1")
        brain = RustBrain(RustBrainConfig(seed=1))
        outcome = brain.repair(case.source, case.difficulty)
        assert outcome.passed
        report = detect_ub(outcome.repaired_source)
        assert report.passed

    def test_unparseable_input_fails_gracefully(self):
        brain = RustBrain(RustBrainConfig(seed=1))
        outcome = brain.repair("fn main() { let = }")
        assert not outcome.passed
        assert outcome.failure_reason is not None

    def test_outcome_accounting(self):
        case = DATASET.get("dangling_use_after_free_1")
        brain = RustBrain(RustBrainConfig(seed=1))
        outcome = brain.repair(case.source, case.difficulty)
        assert outcome.seconds > 0
        assert outcome.tokens > 0
        assert outcome.llm_calls >= 2  # features + generation at minimum

    def test_deterministic_given_seed(self):
        case = DATASET.get("provenance_cast_chain_1")
        out1 = RustBrain(RustBrainConfig(seed=42)).repair(case.source)
        out2 = RustBrain(RustBrainConfig(seed=42)).repair(case.source)
        assert out1.passed == out2.passed
        assert out1.repaired_source == out2.repaired_source
        assert out1.seconds == pytest.approx(out2.seconds)

    def test_feedback_learning_accumulates(self):
        brain = RustBrain(RustBrainConfig(seed=1))
        solved = 0
        for case in DATASET.by_category(DATASET.categories()[0])[:2]:
            outcome = brain.repair(case.source, case.difficulty)
            solved += outcome.passed
        if solved:
            assert len(brain.feedback) >= 1

    def test_feedback_reused_for_similar_cases(self):
        """Self-learning: the second, similar case recalls the first's plan."""
        from repro.miri.errors import UbKind
        cases = DATASET.by_category(UbKind.UNINIT)
        same_pattern = [c for c in cases if c.name.startswith("uninit_assume")]
        assert len(same_pattern) >= 2
        brain = RustBrain(RustBrainConfig(seed=2))
        first = brain.repair(same_pattern[0].source)
        second = brain.repair(same_pattern[1].source)
        if first.passed and second.passed:
            assert second.used_feedback or brain.feedback.stats.hits >= 0

    def test_no_kb_configuration(self):
        config = RustBrainConfig(seed=1, use_knowledge_base=False)
        brain = RustBrain(config)
        assert brain.kb is None
        case = DATASET.get("uninit_assume_init_1")
        outcome = brain.repair(case.source)
        assert not outcome.used_knowledge_base

    def test_semantic_acceptability_check(self):
        case = DATASET.get("uninit_assume_init_1")
        assert semantically_acceptable(case.fixed_source, case.fixed_source)
        assert not semantically_acceptable(case.source, case.fixed_source)


class TestRepairQuality:
    """Aggregate sanity bounds (full bands are asserted in benchmarks)."""

    def test_rustbrain_beats_llm_only(self):
        from repro.bench.experiments import evaluate_arm
        from repro.corpus.dataset import Dataset
        subset = Dataset(tuple(list(DATASET)[::4]))  # every 4th case
        brain = evaluate_arm("rustbrain", model="gpt-4", seed=5,
                             dataset=subset)
        alone = evaluate_arm("llm_only", model="gpt-4", seed=5,
                             dataset=subset)
        assert brain.pass_rate() > alone.pass_rate()

    def test_gpt4_beats_gpt35_standalone(self):
        from repro.bench.experiments import evaluate_arm
        from repro.corpus.dataset import Dataset
        subset = Dataset(tuple(list(DATASET)[::3]))
        strong = evaluate_arm("llm_only", model="gpt-4", seed=5,
                              dataset=subset)
        weak = evaluate_arm("llm_only", model="gpt-3.5", seed=5,
                            dataset=subset)
        assert strong.pass_rate() >= weak.pass_rate()
