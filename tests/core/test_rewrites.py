"""Unit tests for the rewrite-rule library."""

import pytest

from repro.core import rewrites
from repro.core.rewrites import FixKind, REGISTRY, apply_rule, applicable_rules
from repro.lang import parse_program, print_program
from repro.miri import detect_ub


def apply_named(source, rule):
    return apply_rule(parse_program(source), rule)


class TestRegistry:
    def test_registry_has_all_kinds(self):
        kinds = {rule.kind for rule in REGISTRY.values()}
        assert kinds == set(FixKind)

    def test_rule_names_match_keys(self):
        for name, rule in REGISTRY.items():
            assert rule.name == name

    def test_hallucination_rules_listed(self):
        assert len(rewrites.HALLUCINATION_RULES) >= 4
        for name in rewrites.HALLUCINATION_RULES:
            assert REGISTRY[name].kind is FixKind.HALLUCINATION

    def test_apply_never_mutates_input(self):
        source = "fn main() { let x = i32::MAX; let y = x + 1; }"
        program = parse_program(source)
        before = print_program(program)
        apply_rule(program, "saturating_arith_on_extreme")
        assert print_program(program) == before

    def test_unknown_rule_returns_none(self):
        assert apply_named("fn main() { }", "no_such_rule") is None

    def test_inapplicable_rule_returns_none(self):
        assert apply_named("fn main() { let a = 1; }",
                           "replace_set_len_with_resize") is None


class TestReplaceRules:
    def test_transmute_ref_to_cast(self):
        out = apply_named('''
use std::mem;
fn main() {
    let p = &0;
    let v = unsafe { mem::transmute::<&i32, usize>(p) };
    println!("{}", v > 0);
}''', "replace_transmute_ref_with_cast")
        text = print_program(out)
        assert "p as *const i32 as usize" in text
        assert "transmute" not in text

    def test_transmute_bytes_to_from_le(self):
        out = apply_named('''
use std::mem;
fn main() {
    let n1 = [0x17u8, 0x07, 0, 0];
    let n2 = unsafe { mem::transmute::<[u8; 4], u32>(n1) };
    println!("{}", n2);
}''', "replace_transmute_bytes_with_from_le")
        text = print_program(out)
        assert "u32::from_le_bytes(n1)" in text
        # The rewritten program behaves identically (it was already defined).
        assert detect_ub(text).stdout == [str(0x0717)]

    def test_bool_transmute_to_comparison(self):
        out = apply_named('''
use std::mem;
fn main() {
    let raw: u8 = 2;
    let b = unsafe { mem::transmute::<u8, bool>(raw) };
    println!("{}", b);
}''', "replace_transmute_int_with_comparison")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["true"]

    def test_set_len_to_resize(self):
        out = apply_named('''
fn main() {
    let mut v: Vec<i32> = Vec::with_capacity(4);
    unsafe { v.set_len(3); }
    println!("{}", v[2]);
}''', "replace_set_len_with_resize")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["0"]

    def test_static_mut_to_atomic(self):
        out = apply_named('''
static mut COUNTER: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { COUNTER += 2; }
    });
    unsafe { COUNTER += 3; }
    h.join();
    println!("{}", unsafe { COUNTER });
}''', "replace_static_mut_with_atomic")
        text = print_program(out)
        assert "AtomicUsize" in text
        assert "fetch_add" in text
        report = detect_ub(text)
        assert report.passed, report.render()
        assert report.stdout == ["5"]

    def test_get_unchecked_to_index(self):
        out = apply_named('''
fn main() {
    let v = vec![1, 2, 3];
    let x = unsafe { v.get_unchecked(1) };
    println!("{}", x);
}''', "replace_get_unchecked_with_index")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["2"]


class TestAssertRules:
    def test_guard_index(self):
        out = apply_named('''
fn main() {
    let v = vec![1, 2, 3];
    let idx = 9;
    let x = v[idx];
    println!("{}", x);
}''', "guard_index_with_len_check")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["0"]

    def test_guard_division(self):
        out = apply_named('''
fn main() {
    let a = 10;
    let b = 0;
    let c = a / b;
    println!("{}", c);
}''', "guard_division_nonzero")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["0"]

    def test_guard_nonnull(self):
        out = apply_named('''
use std::ptr;
fn main() {
    let p: *const i32 = ptr::null();
    let v = unsafe { *p };
    println!("{}", v);
}''', "guard_nonnull_before_deref")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["0"]

    def test_guard_constant_index_not_touched(self):
        # In-range constant indexing is not the bug pattern this rule targets.
        assert apply_named('''
fn main() {
    let v = vec![1];
    let x = v[0];
    println!("{}", x);
}''', "guard_index_with_len_check") is None


class TestModifyRules:
    def test_move_drop_after_last_use(self):
        out = apply_named('''
fn main() {
    let b = Box::new(9);
    let p = Box::into_raw(b);
    unsafe { drop(Box::from_raw(p)); }
    let v = unsafe { *p };
    println!("{}", v);
}''', "move_drop_after_last_use")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["9"]

    def test_remove_second_free(self):
        out = apply_named('''
fn main() {
    let v = vec![1, 2];
    drop(v);
    drop(v);
    println!("ok");
}''', "remove_second_free")
        report = detect_ub(print_program(out))
        assert report.passed

    def test_join_before_access(self):
        out = apply_named('''
static mut G: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { G += 1; }
    });
    unsafe { G += 1; }
    h.join();
    println!("{}", unsafe { G });
}''', "join_thread_before_access")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["2"]

    def test_add_missing_join(self):
        out = apply_named('''
fn main() {
    std::thread::spawn(move || {
        let x = 1;
    });
    println!("done");
}''', "add_missing_join")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["done"]

    def test_protect_with_mutex(self):
        out = apply_named('''
static mut TOTAL: usize = 0;
fn main() {
    let h = std::thread::spawn(move || {
        unsafe { TOTAL += 4; }
    });
    unsafe { TOTAL += 6; }
    h.join();
    println!("{}", unsafe { TOTAL });
}''', "protect_with_mutex")
        text = print_program(out)
        assert "Mutex" in text
        report = detect_ub(text)
        assert report.passed, report.render()
        assert report.stdout == ["10"]

    def test_fix_call_arity(self):
        out = apply_named('''
fn mul(a: i32, b: i32) -> i32 { a * b }
fn main() {
    let f = mul;
    let v = f(6);
    println!("{}", v);
}''', "fix_call_arity")
        report = detect_ub(print_program(out))
        assert report.passed
        assert report.stdout == ["6"]

    def test_read_unaligned(self):
        out = apply_named('''
fn main() {
    let words = [0x0102030405060708u64, 0];
    let bytes = words.as_ptr() as *const u8;
    let p = unsafe { bytes.add(1) } as *const u32;
    let v = unsafe { *p };
    println!("{}", v);
}''', "read_unaligned_instead")
        report = detect_ub(print_program(out))
        assert report.passed, report.render()


class TestHallucinationRules:
    def test_remove_unsafe_breaks_program(self):
        out = apply_named('''
fn main() {
    let x = 1;
    let p = &x as *const i32;
    let v = unsafe { *p };
    println!("{}", v);
}''', "hallu_remove_unsafe_block")
        report = detect_ub(print_program(out))
        assert not report.passed  # E0133

    def test_perturb_constant_changes_output(self):
        source = 'fn main() { println!("{}", 40 + 2); }'
        out = apply_named(source, "hallu_perturb_constant")
        before = detect_ub(source).stdout
        after = detect_ub(print_program(out)).stdout
        assert before != after

    def test_duplicate_statement(self):
        out = apply_named('''
fn main() {
    let v = vec![1];
    drop(v);
}''', "hallu_duplicate_statement")
        report = detect_ub(print_program(out))
        assert not report.passed  # double free

    def test_delete_statement_often_breaks(self):
        out = apply_named('''
fn main() {
    let a = 1;
    let b = a + 1;
    println!("{}", b);
}''', "hallu_delete_statement")
        report = detect_ub(print_program(out))
        assert not report.passed  # `b` lost its definition


class TestApplicability:
    def test_applicable_rules_on_transmute_program(self):
        program = parse_program('''
use std::mem;
fn main() {
    let raw: u8 = 2;
    let b = unsafe { mem::transmute::<u8, bool>(raw) };
    println!("{}", b);
}''')
        names = applicable_rules(program)
        assert "replace_transmute_int_with_comparison" in names
        assert "replace_set_len_with_resize" not in names

    def test_applicable_excludes_hallucinations_by_default(self):
        program = parse_program("fn main() { let x = 5; }")
        names = applicable_rules(program)
        for name in names:
            assert REGISTRY[name].kind is not FixKind.HALLUCINATION
