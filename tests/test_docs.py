"""The docs can't rot: snippets compile, CLI flags exist, links resolve.

Runs the ``tools/check_docs.py`` checker inside tier-1 so a PR that
renames a flag or breaks a documented example fails before CI's separate
docs step does.
"""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


@pytest.fixture(scope="module")
def cli_options():
    return check_docs._cli_options()


def _doc_paths():
    return check_docs.default_doc_paths()


def test_doc_set_is_nonempty():
    paths = {path.name for path in _doc_paths()}
    assert {"README.md", "DESIGN.md", "quickstart.md"} <= paths


@pytest.mark.parametrize("path", _doc_paths(), ids=lambda p: p.name)
def test_doc_file_is_clean(path, cli_options):
    assert check_docs.check_file(path, cli_options) == []


class TestCheckerCatchesRot:
    """The checker itself must fail on the drift it exists to catch."""

    def test_bad_python_block(self):
        assert check_docs.check_python_block("def broken(:\n    pass")

    def test_doctest_block(self):
        assert check_docs.check_python_block(">>> 1 + 1\n2") is None

    def test_unknown_flag(self, cli_options):
        errors = check_docs.check_bash_block(
            "python -m repro.cli campaign --engine x --quantum", cli_options)
        assert errors and "--quantum" in errors[0]

    def test_continuation_lines_joined(self, cli_options):
        block = ("python -m repro.cli campaign \\\n"
                 "    --engine rustbrain --executor process")
        assert check_docs.check_bash_block(block, cli_options) == []

    def test_unknown_subcommand(self, cli_options):
        errors = check_docs.check_bash_block(
            "python -m repro.cli quantum --engine x", cli_options)
        assert errors

    def test_broken_link(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](nope/gone.md)", encoding="utf-8")
        assert check_docs.check_links(doc, doc.read_text())
