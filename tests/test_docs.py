"""The docs can't rot: snippets compile, CLI flags exist, links resolve.

Runs the ``tools/check_docs.py`` checker inside tier-1 so a PR that
renames a flag or breaks a documented example fails before CI's separate
docs step does.
"""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


@pytest.fixture(scope="module")
def cli_options():
    return check_docs._cli_options()


def _doc_paths():
    return check_docs.default_doc_paths()


def test_doc_set_is_nonempty():
    paths = {path.name for path in _doc_paths()}
    assert {"README.md", "DESIGN.md", "quickstart.md",
            "reference.md"} <= paths


@pytest.mark.parametrize("path", _doc_paths(), ids=lambda p: p.name)
def test_doc_file_is_clean(path, cli_options):
    assert check_docs.check_file(path, cli_options) == []


def test_reference_is_strict_clean():
    # Tier-1 runs the same completeness bar CI's docs step enforces:
    # every event/result dataclass documented, every schema id present.
    path = ROOT / "docs" / "reference.md"
    assert check_docs.check_reference(path.read_text(encoding="utf-8"),
                                      strict=True) == []


class TestReferenceCheckerCatchesDrift:
    """The reference validator must fail on the drift it exists to catch."""

    @pytest.fixture(scope="class")
    def reference_text(self):
        return (ROOT / "docs" / "reference.md").read_text(encoding="utf-8")

    def test_renamed_field_is_stale_and_missing(self, reference_text):
        broken = reference_text.replace("| `wave` | int |",
                                        "| `tide` | int |")
        errors = check_docs.check_reference(broken)
        assert any("nonexistent" in error for error in errors)
        assert any("undocumented" in error for error in errors)

    def test_strict_requires_every_section(self, reference_text):
        broken = reference_text.replace("`CaseResult`", "`CaseThing`")
        assert check_docs.check_reference(broken) == []
        errors = check_docs.check_reference(broken, strict=True)
        assert any("CaseResult: no documented" in error for error in errors)

    def test_strict_requires_every_schema_id(self, reference_text):
        broken = reference_text.replace("repro.bench_ensemble/3",
                                        "repro.bench_ensemble/9")
        errors = check_docs.check_reference(broken, strict=True)
        assert any("repro.bench_ensemble/3" in error for error in errors)

    def test_main_strict_needs_the_reference(self, capsys):
        assert check_docs.main(["--strict", str(ROOT / "README.md")]) == 1


class TestCheckerCatchesRot:
    """The checker itself must fail on the drift it exists to catch."""

    def test_bad_python_block(self):
        assert check_docs.check_python_block("def broken(:\n    pass")

    def test_doctest_block(self):
        assert check_docs.check_python_block(">>> 1 + 1\n2") is None

    def test_unknown_flag(self, cli_options):
        errors = check_docs.check_bash_block(
            "python -m repro.cli campaign --engine x --quantum", cli_options)
        assert errors and "--quantum" in errors[0]

    def test_continuation_lines_joined(self, cli_options):
        block = ("python -m repro.cli campaign \\\n"
                 "    --engine rustbrain --executor process")
        assert check_docs.check_bash_block(block, cli_options) == []

    def test_unknown_subcommand(self, cli_options):
        errors = check_docs.check_bash_block(
            "python -m repro.cli quantum --engine x", cli_options)
        assert errors

    def test_broken_link(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](nope/gone.md)", encoding="utf-8")
        assert check_docs.check_links(doc, doc.read_text())
