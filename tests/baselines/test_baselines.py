"""Tests for the comparison systems: LLM-only, RustAssistant, human expert."""

import pytest

from repro.baselines.human import HUMAN_TIMES, HumanExpert
from repro.baselines.llm_only import LLMOnlyConfig, LLMOnlyRepair
from repro.baselines.rustassistant import RustAssistant, RustAssistantConfig
from repro.corpus.dataset import load_dataset
from repro.miri import detect_ub
from repro.miri.errors import UbKind

DATASET = load_dataset()


class TestLLMOnly:
    def test_clean_program_passes(self):
        repairer = LLMOnlyRepair(LLMOnlyConfig(seed=1))
        outcome = repairer.repair("fn main() { }")
        assert outcome.passed

    def test_repair_verified_by_detector(self):
        repairer = LLMOnlyRepair(LLMOnlyConfig(seed=1))
        for case in list(DATASET)[:12]:
            outcome = repairer.repair(case.source, case.difficulty)
            if outcome.passed and outcome.repaired_source:
                assert detect_ub(outcome.repaired_source).passed

    def test_no_framework_features(self):
        repairer = LLMOnlyRepair(LLMOnlyConfig(seed=1))
        case = DATASET.get("uninit_assume_init_1")
        outcome = repairer.repair(case.source)
        assert not outcome.used_knowledge_base
        assert not outcome.used_feedback
        assert outcome.rollbacks == 0

    def test_bounded_attempts(self):
        config = LLMOnlyConfig(seed=1, attempts=2)
        repairer = LLMOnlyRepair(config)
        case = DATASET.get("funcptr_transmute_arity_1")
        outcome = repairer.repair(case.source, case.difficulty)
        assert outcome.steps_executed <= 2

    def test_deterministic(self):
        case = DATASET.get("panic_overflow_1")
        a = LLMOnlyRepair(LLMOnlyConfig(seed=9)).repair(case.source)
        b = LLMOnlyRepair(LLMOnlyConfig(seed=9)).repair(case.source)
        assert a.passed == b.passed
        assert a.repaired_source == b.repaired_source


class TestRustAssistant:
    def test_fixed_plan_order_is_replace_assert_modify(self):
        from repro.core.rewrites import FixKind, REGISTRY
        assistant = RustAssistant(RustAssistantConfig(seed=1))
        plan = assistant._fixed_plan(UbKind.UNINIT)
        kinds = [REGISTRY[r].kind for r in plan if r in REGISTRY]
        replace_positions = [i for i, k in enumerate(kinds)
                             if k is FixKind.REPLACE]
        modify_positions = [i for i, k in enumerate(kinds)
                            if k is FixKind.MODIFY]
        if replace_positions and modify_positions:
            assert min(replace_positions) < max(modify_positions)

    def test_plan_includes_generic_fallbacks(self):
        assistant = RustAssistant(RustAssistantConfig(seed=1))
        plan = assistant._fixed_plan(UbKind.DATA_RACE)
        assert "guard_index_with_len_check" in plan  # generic, irrelevant

    def test_repair_verified_by_detector(self):
        assistant = RustAssistant(RustAssistantConfig(seed=1))
        for case in list(DATASET)[:12]:
            outcome = assistant.repair(case.source, case.difficulty)
            if outcome.passed and outcome.repaired_source:
                assert detect_ub(outcome.repaired_source).passed

    def test_no_feedback_mechanism(self):
        assistant = RustAssistant(RustAssistantConfig(seed=1))
        case = DATASET.get("uninit_assume_init_1")
        outcome = assistant.repair(case.source)
        assert not outcome.used_feedback

    def test_deterministic(self):
        case = DATASET.get("alloc_wrong_layout_1")
        a = RustAssistant(RustAssistantConfig(seed=4)).repair(case.source)
        b = RustAssistant(RustAssistantConfig(seed=4)).repair(case.source)
        assert a.passed == b.passed


class TestHumanExpert:
    def test_table1_categories_covered(self):
        for category in (UbKind.STACK_BORROW, UbKind.FUNC_CALL,
                         UbKind.DANGLING_POINTER, UbKind.DATA_RACE):
            assert category in HUMAN_TIMES

    def test_func_call_is_slowest(self):
        assert HUMAN_TIMES[UbKind.FUNC_CALL] == max(HUMAN_TIMES.values())

    def test_outcome_time_near_category_mean(self):
        expert = HumanExpert(seed=1, time_jitter=0.15)
        outcome = expert.repair("case_x", UbKind.ALLOC, difficulty=2)
        base = HUMAN_TIMES[UbKind.ALLOC]
        assert 0.5 * base < outcome.seconds < 2.0 * base

    def test_difficulty_scales_time(self):
        expert = HumanExpert(seed=1, time_jitter=0.0)
        easy = expert.repair("case_x", UbKind.ALLOC, difficulty=1)
        hard = expert.repair("case_x", UbKind.ALLOC, difficulty=5)
        assert hard.seconds > easy.seconds

    def test_deterministic_per_case_name(self):
        expert = HumanExpert(seed=1)
        a = expert.repair("same", UbKind.PANIC)
        b = expert.repair("same", UbKind.PANIC)
        assert a.seconds == b.seconds

    def test_high_success_rate(self):
        expert = HumanExpert(seed=1)
        outcomes = [expert.repair(f"case_{i}", UbKind.VALIDITY)
                    for i in range(100)]
        assert sum(o.passed for o in outcomes) >= 90
