"""Ensemble engines: member grammar, strategies, determinism, caching."""

import json

import pytest

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import (Campaign, CampaignObserver, EngineConfigError,
                          MemberFinished, ResultCache, SpecError,
                          create_engine, member_seed, parse_member,
                          parse_members, parse_routes, parse_weights)
from repro.engine.ensemble import (DEFAULT_MEMBERS, ENSEMBLE_KINDS,
                                   EnsembleEngine)
from repro.llm.profiles import PROFILES
from repro.miri.errors import UbKind

SEED = 3
ENSEMBLES = ["portfolio", "cascade", "switch"]


@pytest.fixture(scope="module")
def dataset():
    return load_dataset().subset([UbKind.UNINIT, UbKind.PANIC,
                                  UbKind.STACK_BORROW])


@pytest.fixture(scope="module")
def small(dataset):
    return Dataset(tuple(list(dataset)[:6]))


# ---------------------------------------------------------------------------
# Member grammar


class TestMemberGrammar:
    def test_plain_member(self):
        member = parse_member("rustbrain")
        assert member.spec.name == "rustbrain"
        assert member.model is None

    def test_model_suffix(self):
        member = parse_member("llm_only:claude-3.5")
        assert member.spec.name == "llm_only"
        assert member.model == "claude-3.5"

    def test_params_with_semicolons(self):
        member = parse_member("rustbrain;kb=off;temperature=0.2:gpt-4")
        assert member.spec.to_string() == \
            "rustbrain?kb=off&temperature=0.2"
        assert member.model == "gpt-4"

    def test_nested_member_list_with_tilde(self):
        member = parse_member("cascade;members=gpt-3.5~rustbrain")
        assert member.spec.to_string() == "cascade?members=gpt-3.5+rustbrain"

    def test_round_trip(self):
        for text in ("rustbrain", "llm_only:gpt-4",
                     "rustbrain;kb=off:claude-3.5",
                     "cascade;members=gpt-3.5~rustbrain"):
            member = parse_member(text)
            assert parse_member(member.to_string()) == member

    def test_unknown_model_tail_is_not_a_model(self):
        # A ':tail' that names no profile belongs to the spec text and
        # should surface as a spec error, not run with a bogus model.
        with pytest.raises(SpecError):
            parse_member("llm_only:gpt4-typo")

    def test_full_member_list(self):
        members = parse_members("rustbrain:gpt-4+llm_only:claude-3.5")
        assert [(m.spec.name, m.model) for m in members] == \
            [("rustbrain", "gpt-4"), ("llm_only", "claude-3.5")]

    def test_empty_member_rejected(self):
        with pytest.raises(SpecError):
            parse_members("rustbrain++llm_only")

    def test_empty_member_list_rejected(self):
        # "".split("+") yields [""], so the no-members case needs its own
        # guard — and its own message, not a confusing per-member error.
        for text in ("", "   "):
            with pytest.raises(SpecError, match="no ensemble members"):
                parse_members(text)

    def test_routes_parse_and_validate(self):
        routes = parse_routes("stack_borrow:1,datarace:0", 2)
        assert routes == {UbKind.STACK_BORROW: 1, UbKind.DATA_RACE: 0}
        with pytest.raises(EngineConfigError, match="unknown UB category"):
            parse_routes("quantum:0", 2)
        with pytest.raises(EngineConfigError, match="past the member list"):
            parse_routes("alloc:7", 2)
        with pytest.raises(EngineConfigError, match="malformed route"):
            parse_routes("alloc", 2)

    def test_duplicate_route_rejected(self):
        # A later duplicate silently overwriting an earlier entry would run
        # a different routing table than the arm label claims.
        with pytest.raises(EngineConfigError, match="duplicate route"):
            parse_routes("alloc:0,datarace:1,alloc:1", 2)
        with pytest.raises(EngineConfigError, match="duplicate route"):
            create_engine("switch?routes=alloc:0,alloc:1")

    def test_weights_parse_and_validate(self):
        assert parse_weights("1,2.5,0.5", 3) == (1.0, 2.5, 0.5)
        assert parse_weights("", 3) is None
        assert parse_weights(None, 3) is None
        # Spec coercion types a bare number before the config sees it.
        assert parse_weights(2, 1) == (2.0,)
        assert parse_weights(0.5, 1) == (0.5,)
        with pytest.raises(EngineConfigError, match="malformed weights"):
            parse_weights("1,heavy", 2)
        with pytest.raises(EngineConfigError, match="does not match"):
            parse_weights("1,2", 3)
        with pytest.raises(EngineConfigError, match="must be positive"):
            parse_weights("1,-2", 2)
        with pytest.raises(EngineConfigError, match="must be positive"):
            parse_weights("0,1", 2)


# ---------------------------------------------------------------------------
# Construction and validation


class TestConstruction:
    def test_every_kind_builds_with_defaults(self):
        for kind in ENSEMBLE_KINDS:
            engine = create_engine(kind)
            assert isinstance(engine, EnsembleEngine)
            assert len(engine.members) >= 2

    def test_profile_arms_registered(self):
        for name in PROFILES:
            engine = create_engine(name, seed=1)
            assert engine.config.model == name

    def test_unknown_member_fails_fast(self):
        from repro.engine import UnknownEngineError
        with pytest.raises(UnknownEngineError):
            create_engine("portfolio?members=quantum_typo+rustbrain")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EngineConfigError, match="strategy"):
            create_engine("portfolio?strategy=quantum")

    def test_strategy_rejected_for_non_portfolio_kinds(self):
        # cascade/switch are first-pass by construction; silently ignoring
        # strategy= would run different semantics than the label claims.
        for spec in ("cascade?strategy=vote", "switch?strategy=best_score"):
            with pytest.raises(EngineConfigError, match="only applies"):
                create_engine(spec)
        assert create_engine("cascade?strategy=first_pass") is not None

    def test_duplicate_arm_labels_rejected(self, small):
        # llm_only under model X and the X profile arm are the same engine
        # with the same label; keying arms by label would merge them.
        with pytest.raises(ValueError, match="duplicate arm label"):
            Campaign(["llm_only", "gpt-4"], small, model="gpt-4")
        with pytest.raises(ValueError, match="duplicate arm label"):
            Campaign(["cascade", "cascade"], small)

    def test_fallback_out_of_range_rejected(self):
        with pytest.raises(EngineConfigError, match="fallback"):
            create_engine("switch?fallback=9")

    def test_unknown_option_rejected(self):
        with pytest.raises(EngineConfigError):
            create_engine("portfolio?quantum=3")

    def test_member_workers_validated(self):
        with pytest.raises(EngineConfigError, match="member_workers"):
            create_engine("portfolio?member_workers=0")
        with pytest.raises(EngineConfigError, match="member_executor"):
            create_engine("portfolio?member_workers=2&member_executor=gpu")
        assert create_engine("portfolio?member_workers=4") is not None

    def test_weights_only_for_vote_portfolios(self):
        for spec in ("portfolio?strategy=best_score&weights=1,1,1",
                     "portfolio?weights=1,1,1"):  # default first_pass
            with pytest.raises(EngineConfigError, match="weights"):
                create_engine(spec)
        assert create_engine("portfolio?strategy=vote&weights=1,2,3") \
            is not None
        # A one-member portfolio's weights value is a bare number.
        assert create_engine("portfolio?members=gpt-4&strategy=vote"
                             "&weights=2") is not None

    def test_budgets_only_for_portfolios(self):
        for spec in ("cascade?budget_tokens=100",
                     "switch?budget_seconds=10"):
            with pytest.raises(EngineConfigError, match="only apply"):
                create_engine(spec)
        with pytest.raises(EngineConfigError, match=">= 0"):
            create_engine("portfolio?budget_tokens=-1")
        assert create_engine("portfolio?budget_tokens=100"
                             "&budget_seconds=30") is not None

    def test_campaign_fails_fast_on_bad_member(self, small):
        from repro.engine import UnknownEngineError
        with pytest.raises(UnknownEngineError):
            Campaign(["portfolio?members=quantum_typo"], small)


# ---------------------------------------------------------------------------
# Semantics


class TestSemantics:
    def test_first_pass_stops_at_winner(self, dataset):
        case = next(c for c in dataset if c.category is UbKind.UNINIT)
        outcome = create_engine("cascade", seed=SEED).repair(
            case.source, case.difficulty)
        if outcome.members[0]["passed"]:
            assert len(outcome.members) == 1
        assert outcome.passed == any(m["passed"] for m in outcome.members)

    def test_best_score_and_vote_consult_everyone(self, dataset):
        case = list(dataset)[0]
        for strategy in ("best_score", "vote"):
            outcome = create_engine(f"portfolio?strategy={strategy}",
                                    seed=SEED).repair(case.source,
                                                      case.difficulty)
            assert len(outcome.members) == 3  # default member list

    def test_member_accounting_sums(self, dataset):
        case = list(dataset)[0]
        outcome = create_engine("portfolio?strategy=best_score",
                                seed=SEED).repair(case.source,
                                                  case.difficulty)
        assert outcome.tokens == sum(m["tokens"] for m in outcome.members)
        assert outcome.llm_calls == sum(m["llm_calls"]
                                        for m in outcome.members)
        assert outcome.seconds == pytest.approx(
            sum(m["seconds"] for m in outcome.members))

    def test_switch_routes_on_category(self, dataset):
        # Default routes send stack_borrow straight to the slow member.
        case = next(c for c in dataset
                    if c.category is UbKind.STACK_BORROW)
        outcome = create_engine("switch", seed=SEED).repair(
            case.source, case.difficulty)
        assert outcome.members[0]["index"] == 1
        # ... and the routing detector run is charged to the clock.
        assert outcome.seconds == pytest.approx(
            0.8 + sum(m["seconds"] for m in outcome.members))

    def test_switch_no_escalate_consults_one_member(self, dataset):
        case = list(dataset)[0]
        outcome = create_engine("switch?escalate=off", seed=SEED).repair(
            case.source, case.difficulty)
        assert len(outcome.members) == 1

    def test_member_seed_scheme_is_stable(self):
        # The published derivation: changing any input changes the seed.
        base = member_seed(3, 0, 0)
        assert member_seed(3, 0, 1) != base
        assert member_seed(3, 1, 0) != base
        assert member_seed(4, 0, 0) != base
        assert member_seed(3, 0, 0) == base

    def test_members_inherit_ensemble_model(self, dataset):
        case = list(dataset)[0]
        outcome = create_engine("portfolio?members=llm_only+llm_only",
                                model="claude-3.5", seed=SEED).repair(
                                    case.source, case.difficulty)
        assert {m["model"] for m in outcome.members} == {"claude-3.5"}


# ---------------------------------------------------------------------------
# Concurrent consultation (member_workers), weights, budgets


VOTE_MW = "portfolio?strategy=vote&member_workers=3"


class TestConcurrentMembers:
    def test_member_executors_byte_identical(self, dataset):
        # The pool backend is pure wall-clock: serial, thread, and process
        # consultation of the same waves returns identical outcomes.
        for case in list(dataset)[:3]:
            outcomes = [
                create_engine(f"{VOTE_MW}&member_executor={backend}",
                              seed=SEED).repair(case.source, case.difficulty)
                for backend in ("serial", "thread", "process")
            ]
            assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_wave_charges_max_not_sum(self, dataset):
        case = list(dataset)[0]
        sequential = create_engine("portfolio?strategy=best_score",
                                   seed=SEED).repair(case.source,
                                                     case.difficulty)
        wide = create_engine("portfolio?strategy=best_score"
                             "&member_workers=3",
                             seed=SEED).repair(case.source, case.difficulty)
        member_seconds = [m["seconds"] for m in sequential.members]
        assert sequential.seconds == pytest.approx(sum(member_seconds))
        assert wide.seconds == pytest.approx(max(member_seconds))
        # Everything but the clock is untouched by the wave width.
        assert [m["passed"] for m in wide.members] == \
            [m["passed"] for m in sequential.members]
        assert wide.tokens == sequential.tokens
        assert wide.repaired_source == sequential.repaired_source

    def test_waves_chunk_by_member_workers(self, dataset):
        case = list(dataset)[0]
        narrow = create_engine("portfolio?strategy=vote&member_workers=2",
                               seed=SEED).repair(case.source,
                                                 case.difficulty)
        assert [m["wave"] for m in narrow.members] == [0, 0, 1]
        sequential = create_engine("portfolio?strategy=vote",
                                   seed=SEED).repair(case.source,
                                                     case.difficulty)
        assert [m["wave"] for m in sequential.members] == [0, 1, 2]

    def test_vote_winner_member_workers_invariant(self, dataset):
        # The semantics change is confined to the clock: winners and
        # member verdicts match sequential consultation at any width.
        for case in list(dataset)[:4]:
            sequential = create_engine("portfolio?strategy=vote",
                                       seed=SEED).repair(case.source,
                                                         case.difficulty)
            wide = create_engine(VOTE_MW, seed=SEED).repair(case.source,
                                                            case.difficulty)
            assert wide.passed == sequential.passed
            assert wide.repaired_source == sequential.repaired_source

    def test_first_pass_chains_stay_sequential(self, dataset):
        # cascade (and first_pass) consultations are order-dependent;
        # member_workers must not change their bytes at all.
        case = list(dataset)[0]
        plain = create_engine("cascade", seed=SEED).repair(case.source,
                                                           case.difficulty)
        wide = create_engine("cascade?member_workers=4", seed=SEED).repair(
            case.source, case.difficulty)
        assert wide == plain

    def test_switch_escalation_waves(self, dataset):
        # Routed member always consults alone (its verdict gates
        # escalation); the rest chunk into concurrent waves.
        case = next(c for c in dataset if c.category is UbKind.STACK_BORROW)
        spec = ("switch?members=gpt-3.5+gpt-3.5+claude-3.5+gpt-4"
                "&routes=stack_borrow:0&member_workers=4")
        outcome = create_engine(spec, seed=SEED).repair(case.source,
                                                        case.difficulty)
        waves = [m["wave"] for m in outcome.members]
        if len(outcome.members) > 1:
            assert waves[0] == 0
            assert set(waves[1:]) == {1}
        expected = 0.8 + outcome.members[0]["seconds"] + (
            max(m["seconds"] for m in outcome.members[1:])
            if len(outcome.members) > 1 else 0.0)
        assert outcome.seconds == pytest.approx(expected)

    def test_weighted_vote_is_deterministic_and_heeds_weights(self, dataset):
        unit = "portfolio?strategy=vote&weights=1,1,1"
        for case in list(dataset)[:4]:
            plain = create_engine("portfolio?strategy=vote",
                                  seed=SEED).repair(case.source,
                                                    case.difficulty)
            weighted = create_engine(unit, seed=SEED).repair(
                case.source, case.difficulty)
            assert weighted == plain  # unit weights == no weights
            skew = create_engine("portfolio?strategy=vote&weights=1,1,100",
                                 seed=SEED).repair(case.source,
                                                   case.difficulty)
            if skew.members[2]["passed"]:
                # An overwhelming weight elects member 2's repair.
                third = create_engine("gpt-4", seed=member_seed(SEED, 0, 2))
                assert skew.repaired_source == \
                    third.repair(case.source, case.difficulty).repaired_source

    def test_budget_tokens_stops_consultation(self, dataset):
        case = list(dataset)[0]
        tiny = create_engine("portfolio?strategy=best_score&budget_tokens=1",
                             seed=SEED).repair(case.source, case.difficulty)
        assert len(tiny.members) == 1
        runs = [create_engine("portfolio?strategy=best_score"
                              "&budget_tokens=1", seed=SEED).repair(
                                  case.source, case.difficulty)
                for _ in range(2)]
        assert runs[0] == runs[1]  # deterministic truncation
        roomy = create_engine("portfolio?strategy=best_score"
                              "&budget_tokens=10000000",
                              seed=SEED).repair(case.source, case.difficulty)
        assert len(roomy.members) == 3

    def test_budget_seconds_stops_consultation(self, dataset):
        case = list(dataset)[0]
        tiny = create_engine("portfolio?strategy=best_score"
                             "&budget_seconds=0.1",
                             seed=SEED).repair(case.source, case.difficulty)
        assert len(tiny.members) == 1
        if not tiny.passed:
            assert "budget exhausted" in tiny.failure_reason

    def test_budget_counts_the_crossing_member(self, dataset):
        # The consultation that crosses the budget still counts: its
        # tokens/seconds and verdict stay in the outcome.
        case = list(dataset)[0]
        outcome = create_engine("portfolio?strategy=best_score"
                                "&budget_tokens=1",
                                seed=SEED).repair(case.source,
                                                  case.difficulty)
        assert outcome.tokens == outcome.members[0]["tokens"]
        assert outcome.tokens >= 1


# ---------------------------------------------------------------------------
# Campaign determinism


class TestCampaignDeterminism:
    @pytest.fixture(scope="class")
    def serial_run(self, dataset):
        return Campaign(ENSEMBLES, dataset, seed=SEED, workers=1,
                        shard_size=4, executor="serial").run()

    def test_process_pool_byte_identical(self, dataset, serial_run):
        for workers in (2, 4):
            pooled = Campaign(ENSEMBLES, dataset, seed=SEED,
                              workers=workers, shard_size=4,
                              executor="process").run()
            assert json.dumps([arm.to_dict() for arm in pooled.arms],
                              sort_keys=True) == \
                json.dumps([arm.to_dict() for arm in serial_run.arms],
                           sort_keys=True)
            assert pooled.telemetry.to_dict() == \
                serial_run.telemetry.to_dict()

    def test_thread_pool_matches(self, dataset, serial_run):
        threaded = Campaign(ENSEMBLES, dataset, seed=SEED, workers=4,
                            shard_size=4, executor="thread").run()
        assert threaded.by_label() == serial_run.by_label()

    def test_nested_ensemble_is_deterministic(self, small):
        spec = "portfolio?members=cascade+gpt-4&strategy=first_pass"
        serial = Campaign([spec], small, seed=SEED,
                          executor="serial").run()
        pooled = Campaign([spec], small, seed=SEED, workers=3,
                          shard_size=2, executor="process").run()
        assert json.dumps([arm.to_dict() for arm in serial.arms],
                          sort_keys=True) == \
            json.dumps([arm.to_dict() for arm in pooled.arms],
                       sort_keys=True)

    def test_member_workers_arm_executor_invariant(self, small):
        # Concurrent consultation inside every campaign backend, nested
        # ensembles included: serial == thread == process, byte for byte.
        specs = [VOTE_MW,
                 "portfolio?members=portfolio;strategy=vote;"
                 "member_workers=2+gpt-4&strategy=vote&member_workers=2"]
        serial = Campaign(specs, small, seed=SEED, shard_size=2,
                          executor="serial").run()
        threaded = Campaign(specs, small, seed=SEED, workers=3,
                            shard_size=2, executor="thread").run()
        pooled = Campaign(specs, small, seed=SEED, workers=3,
                          shard_size=2, executor="process").run()
        reference = json.dumps([arm.to_dict() for arm in serial.arms],
                               sort_keys=True)
        for result in (threaded, pooled):
            assert json.dumps([arm.to_dict() for arm in result.arms],
                              sort_keys=True) == reference
        assert threaded.telemetry.to_dict() == serial.telemetry.to_dict()
        assert pooled.telemetry.to_dict() == serial.telemetry.to_dict()

    def test_member_wave_rides_telemetry(self, small):
        result = Campaign([VOTE_MW], Dataset(tuple(list(small)[:2])),
                          seed=SEED, executor="serial").run()
        events = [event for event in result.telemetry.events
                  if isinstance(event, MemberFinished)]
        assert events and all(event.wave == 0 for event in events)

    def test_member_telemetry_emitted(self, serial_run):
        events = [event for event in serial_run.telemetry.events
                  if isinstance(event, MemberFinished)]
        assert events
        reported = sum(len(report.members) for arm in serial_run.arms
                       for report in arm.reports)
        assert len(events) == reported
        assert serial_run.telemetry.to_dict()["members_finished"] == reported

    def test_ensemble_labels_omit_campaign_model(self, serial_run):
        # Ensembles pin their members' models, so the campaign-level model
        # must not name the arm.
        assert [arm.label for arm in serial_run.arms] == ENSEMBLES


# ---------------------------------------------------------------------------
# Caching


class TestCaching:
    def test_warm_replay_executes_no_members(self, tmp_path, small,
                                             monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = "portfolio?members=cascade+gpt-4"  # nested ensemble
        kwargs = dict(seed=SEED, shard_size=2, cache=cache)
        cold = Campaign([spec], small, **kwargs).run()
        assert cold.telemetry.cache_counts() == (0, len(small))

        def boom(*args, **kwargs):
            raise AssertionError("a member executed during a warm replay")

        monkeypatch.setattr(EnsembleEngine, "_run_member", boom)
        warm = Campaign([spec], small, **kwargs).run()
        assert warm.telemetry.cache_counts() == (len(small), 0)
        assert [arm.reports for arm in warm.arms] == \
            [arm.reports for arm in cold.arms]
        assert warm.telemetry.to_dict()["members_finished"] == \
            cold.telemetry.to_dict()["members_finished"]

    def test_member_cache_shares_work_and_bytes(self, tmp_path, small):
        # Two different ensembles sharing a member cache: the overlapping
        # members hit, and results are identical to uncached runs.
        member_dir = tmp_path / "members"
        specs = [f"cascade?member_cache_dir={member_dir}",
                 f"switch?member_cache_dir={member_dir}"]
        cached = Campaign(specs, small, seed=SEED).run()
        plain = Campaign(["cascade", "switch"], small, seed=SEED).run()
        for cached_arm, plain_arm in zip(cached.arms, plain.arms):
            assert [r.members for r in cached_arm.reports] == \
                [r.members for r in plain_arm.reports]
            assert [r.passed for r in cached_arm.reports] == \
                [r.passed for r in plain_arm.reports]

    def test_member_cache_shared_across_instances(self, tmp_path):
        # Per-case isolation builds one engine per case; the in-memory
        # read-through layer must survive across them, not start cold.
        from repro.engine.ensemble import _member_cache
        root = tmp_path / "members"
        assert _member_cache(root) is _member_cache(str(root))

    def test_member_cache_warm_run_is_identical(self, tmp_path, small):
        member_dir = tmp_path / "members"
        spec = f"cascade?member_cache_dir={member_dir}"
        first = Campaign([spec], small, seed=SEED).run()
        second = Campaign([spec], small, seed=SEED).run()
        assert [arm.reports for arm in first.arms] == \
            [arm.reports for arm in second.arms]

    def test_warm_member_cache_parallel_consultation_executes_nothing(
            self, tmp_path, small, monkeypatch):
        # Concurrent waves replay warm members parent-side: no task ever
        # reaches the pool (inline and pooled paths share one execution
        # function, so patching it proves both idle).
        from repro.engine import ensemble as ensemble_module
        member_dir = tmp_path / "members"
        spec = f"{VOTE_MW}&member_cache_dir={member_dir}"
        cold = Campaign([spec], small, seed=SEED).run()

        def boom(*_args, **_kwargs):
            raise AssertionError("a member executed during a warm replay")

        monkeypatch.setattr(ensemble_module, "_execute_member_task", boom)
        warm = Campaign([spec], small, seed=SEED).run()
        assert [arm.reports for arm in warm.arms] == \
            [arm.reports for arm in cold.arms]

    def test_cache_epoch_invalidates_keys(self, monkeypatch):
        from repro.engine import cache as cache_module
        before = cache_module.case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        before_arm = cache_module.arm_key("llm_only", "gpt-4", 0.5, 7, "fp")
        monkeypatch.setattr(cache_module, "CACHE_EPOCH",
                            cache_module.CACHE_EPOCH + 1)
        assert cache_module.case_key("llm_only", "gpt-4", 0.5, 7,
                                     "fp") != before
        assert cache_module.arm_key("llm_only", "gpt-4", 0.5, 7,
                                    "fp") != before_arm


# ---------------------------------------------------------------------------
# Cross-member detection memo (fingerprint layer)


class TestCrossMemberMemo:
    @pytest.fixture(autouse=True)
    def _fresh_memo(self):
        from repro.miri import CASE_MEMO
        CASE_MEMO.clear()
        yield
        CASE_MEMO.clear()
        CASE_MEMO.enabled = True

    def test_members_share_one_case_detection(self, small):
        # N members all run F1 on the identical case source; the memo
        # answers every repeat after the first without an interpreter run.
        from repro.miri import CASE_MEMO, DETECTOR_STATS
        case = list(small)[0]
        DETECTOR_STATS.reset()
        create_engine("portfolio?strategy=best_score", seed=SEED).repair(
            case.source, case.difficulty)
        assert DETECTOR_STATS.case_memo_hits >= 2  # members 2 and 3 hit
        assert len(CASE_MEMO) >= 1

    def test_outcomes_identical_to_memo_free_run(self, small):
        # Byte-identity vs the PR-4 execution profile: the same ensemble
        # with the memo disabled and fingerprinting off produces the
        # exact same RepairOutcome for every case.
        from repro.miri import CASE_MEMO
        members = "gpt-3.5+rustbrain:gpt-4"
        off_members = ("gpt-3.5;fingerprint=off"
                       "+rustbrain;fingerprint=off:gpt-4")

        def strip_member_specs(outcome):
            # The member spec string legitimately differs (it spells the
            # fingerprint=off override); everything else must not.
            payload = dict(vars(outcome))
            payload["members"] = [
                {key: value for key, value in member.items()
                 if key != "member"} for member in outcome.members]
            return payload

        for case in list(small)[:4]:
            on = create_engine(f"cascade?members={members}",
                               seed=SEED).repair(case.source,
                                                 case.difficulty)
            CASE_MEMO.enabled = False
            off = create_engine(f"cascade?members={off_members}",
                                seed=SEED).repair(case.source,
                                                  case.difficulty)
            CASE_MEMO.enabled = True
            assert strip_member_specs(on) == strip_member_specs(off)

    def test_switch_routing_rides_the_memo(self, small):
        from repro.miri import DETECTOR_STATS
        case = list(small)[0]
        create_engine("switch", seed=SEED).repair(case.source,
                                                  case.difficulty)
        DETECTOR_STATS.reset()
        create_engine("switch", seed=SEED + 1).repair(case.source,
                                                      case.difficulty)
        # The second arm's routing probe is a memo hit, not a run.
        assert DETECTOR_STATS.case_memo_hits >= 1


# ---------------------------------------------------------------------------
# Observer integration


class TestObserver:
    def test_on_member_done_hook(self, small):
        seen = []

        class Recorder(CampaignObserver):
            def on_member_done(self, event):
                assert isinstance(event, MemberFinished)
                seen.append((event.case, event.member_index, event.passed))

        Campaign(["cascade"], Dataset(tuple(list(small)[:2])), seed=SEED,
                 observers=[Recorder()]).run()
        assert seen
        assert all(isinstance(index, int) for _case, index, _p in seen)


def test_default_members_use_three_profiles():
    # The acceptance bar: ensembles composed from >= 3 model profiles.
    models = set()
    for kind in ENSEMBLE_KINDS:
        for member in parse_members(DEFAULT_MEMBERS[kind]):
            if member.model:
                models.add(member.model)
    assert len(models) >= 3
