"""Result cache: keying, round-trips, invalidation, campaign integration."""

import json
import threading

import pytest

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import (Campaign, ResultCache, arm_key, case_key,
                          fingerprint_case, fingerprint_dataset)
from repro.engine.types import RepairReport
from repro.miri.errors import UbKind

SEED = 3
ENGINES = ["llm_only", "rustbrain?kb=off"]


@pytest.fixture(scope="module")
def dataset():
    return load_dataset().subset([UbKind.UNINIT, UbKind.PANIC])


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _report(case="c", passed=True) -> RepairReport:
    return RepairReport(
        case=case, engine="gpt-4", category=UbKind.UNINIT, passed=passed,
        acceptable=passed, repaired_source="fn main() {}", seconds=1.5,
        tokens=123, llm_calls=4, solutions_tried=2, steps_executed=3,
        hallucinations=0, rollbacks=1, used_knowledge_base=True,
        used_feedback=False, applied_rules=["replace_uninit_with_zero_init"],
        failure_reason=None)


class TestReportRoundTrip:
    def test_to_from_dict_is_exact(self):
        report = _report()
        assert RepairReport.from_dict(report.to_dict()) == report

    def test_json_round_trip_is_exact(self):
        report = _report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert RepairReport.from_dict(payload) == report

    def test_none_category_round_trips(self):
        report = _report()
        report.category = None
        assert RepairReport.from_dict(report.to_dict()) == report


class TestResultCache:
    def test_miss_then_hit(self, cache):
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        assert cache.get(key) is None
        cache.put(key, [_report()])
        assert cache.get(key) == [_report()]
        assert cache.hits == 1 and cache.misses == 1

    def test_hit_survives_new_instance(self, cache):
        # The disk layer, not the in-memory memo, is the source of truth.
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        cache.put(key, [_report()])
        reopened = ResultCache(cache.root)
        assert reopened.get(key) == [_report()]

    def test_corrupt_entry_reads_as_miss(self, cache):
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        cache.put(key, [_report()])
        cache._memory.clear()
        cache._path(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_schema_mismatch_reads_as_miss(self, cache):
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        cache.put(key, [_report()])
        cache._memory.clear()
        entry = json.loads(cache._path(key).read_text())
        entry["schema"] = "repro.result-cache/0"
        cache._path(key).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None

    def test_len_and_clear(self, cache):
        for seed in range(3):
            cache.put(case_key("llm_only", "gpt-4", 0.5, seed, "fp"),
                      [_report()])
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
        assert cache.get(case_key("llm_only", "gpt-4", 0.5, 0, "fp")) is None

    @staticmethod
    def _orphan(cache, name="tmpdead.tmp"):
        """Plant a leftover atomic-write temp file (a worker that died
        between mkstemp and os.replace)."""
        shard = cache.root / "ab"
        shard.mkdir(exist_ok=True)
        orphan = shard / name
        orphan.write_text("{torn", encoding="utf-8")
        return orphan

    def test_len_ignores_orphaned_tmp_files(self, cache):
        cache.put(case_key("llm_only", "gpt-4", 0.5, 7, "fp"), [_report()])
        self._orphan(cache)
        assert len(cache) == 1

    def test_clear_sweeps_orphaned_tmp_files(self, cache):
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        cache.put(key, [_report()])
        orphan = self._orphan(cache)
        cache.clear()
        assert not orphan.exists()
        assert len(cache) == 0

    def test_construction_sweeps_orphaned_tmp_files(self, cache):
        import os
        key = case_key("llm_only", "gpt-4", 0.5, 7, "fp")
        cache.put(key, [_report()])
        orphans = [self._orphan(cache, f"tmp{i}.tmp") for i in range(3)]
        stale = 3600 * 24
        for orphan in orphans:
            os.utime(orphan, (orphan.stat().st_mtime - stale,) * 2)
        fresh = self._orphan(cache, "tmplive.tmp")
        reopened = ResultCache(cache.root)
        assert not any(orphan.exists() for orphan in orphans)
        # A young tmp may be a concurrent writer mid-put: spared.
        assert fresh.exists()
        # Committed entries survive the sweep untouched.
        assert reopened.get(key) == [_report()]


class TestConcurrentAccess:
    """The lock-guarded in-memory layer and the atomic disk writes must
    survive threads racing the same key (the service's coalescing tier
    leans on exactly this)."""

    KEY = case_key("llm_only", "gpt-4", 0.5, 7, "fp")

    def test_racing_read_through_same_key(self, cache):
        # Two threads read-through the same cold key: every answer is the
        # full entry, and the counters account for every single lookup.
        expected = [_report()]
        barrier = threading.Barrier(2)
        rounds = 50
        results: list = []

        def read_through():
            barrier.wait()
            for _ in range(rounds):
                reports = cache.get(self.KEY)
                if reports is None:
                    cache.put(self.KEY, expected)
                    reports = cache.get(self.KEY)
                results.append(reports)

        threads = [threading.Thread(target=read_through) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 2 * rounds
        assert all(reports == expected for reports in results)
        counts = cache.counts()
        assert counts["hits"] + counts["misses"] == \
            cache.hits + cache.misses
        assert counts["hits"] >= 2 * rounds - 2  # at most one cold miss each
        assert counts["memory_entries"] == 1

    def test_put_race_never_serves_torn_entry(self, cache):
        # A writer re-puts the entry (identical bytes, as racing campaign
        # workers do) while a reader keeps forcing the disk path; no read
        # may ever observe a partial or corrupt file.
        expected = [_report()]
        cache.put(self.KEY, expected)
        stop = threading.Event()
        torn: list = []

        def writer():
            while not stop.is_set():
                cache.put(self.KEY, expected)

        def reader():
            try:
                for _ in range(200):
                    with cache._lock:
                        cache._memory.pop(self.KEY, None)
                    if cache.get(self.KEY) != expected:
                        torn.append("torn or missing entry")
            finally:
                stop.set()

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert torn == []

    def test_counts_is_a_consistent_snapshot(self, cache):
        cache.put(self.KEY, [_report()])
        cache.get(self.KEY)
        cache.get(case_key("llm_only", "gpt-4", 0.5, 8, "other"))
        assert cache.counts() == {"hits": 1, "misses": 1,
                                  "memory_entries": 1, "io_errors": 0}
        cache.clear()
        assert cache.counts() == {"hits": 0, "misses": 0,
                                  "memory_entries": 0, "io_errors": 0}


class TestKeying:
    """Every component of the key must invalidate independently."""

    BASE = dict(spec="rustbrain?kb=off", model="gpt-4", temperature=0.5,
                seed=7, fp="fingerprint")

    def _key(self, **changes):
        params = {**self.BASE, **changes}
        return case_key(params["spec"], params["model"],
                        params["temperature"], params["seed"], params["fp"])

    def test_identical_inputs_identical_key(self):
        assert self._key() == self._key()

    @pytest.mark.parametrize("field,value", [
        ("spec", "rustbrain"),
        ("model", "gpt-3.5"),
        ("temperature", 0.2),
        ("seed", 8),
        ("fp", "other"),
    ])
    def test_each_component_changes_key(self, field, value):
        assert self._key(**{field: value}) != self._key()

    def test_case_fingerprint_tracks_source(self):
        base = fingerprint_case("case", "fn main() {}", "fn main() {}", 2,
                                UbKind.UNINIT)
        assert fingerprint_case("case", "fn main() { let x = 1; }",
                                "fn main() {}", 2, UbKind.UNINIT) != base
        assert fingerprint_case("case", "fn main() {}", None, 2,
                                UbKind.UNINIT) != base
        assert fingerprint_case("case", "fn main() {}", "fn main() {}", 3,
                                UbKind.UNINIT) != base

    def test_arm_and_case_keys_never_collide(self):
        assert arm_key("llm_only", "gpt-4", 0.5, 7, "fp") != \
            case_key("llm_only", "gpt-4", 0.5, 7, "fp")

    def test_dataset_fingerprint_is_order_sensitive(self, dataset):
        cases = list(dataset)[:4]
        assert fingerprint_dataset(cases) != \
            fingerprint_dataset(list(reversed(cases)))


class TestCampaignIntegration:
    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1), ("thread", 4), ("process", 4),
    ])
    def test_warm_rerun_is_pure_replay(self, tmp_path, dataset, executor,
                                       workers):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:6]))
        kwargs = dict(seed=SEED, shard_size=2, executor=executor,
                      workers=workers, cache=cache)
        cold = Campaign(ENGINES, small, **kwargs).run()
        cases = len(small) * len(ENGINES)
        assert cold.telemetry.cache_counts() == (0, cases)
        warm = Campaign(ENGINES, small, **kwargs).run()
        # Zero engine case executions: every case answered by the cache.
        assert warm.telemetry.cache_counts() == (cases, 0)
        assert json.dumps([arm.to_dict() for arm in warm.arms],
                          sort_keys=True) == \
            json.dumps([arm.to_dict() for arm in cold.arms], sort_keys=True)

    def test_hit_is_identical_report_object_content(self, tmp_path, dataset):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:3]))
        cold = Campaign(["llm_only"], small, seed=SEED, cache=cache).run()
        warm = Campaign(["llm_only"], small, seed=SEED, cache=cache).run()
        assert warm.arms[0].reports == cold.arms[0].reports

    def test_cache_shared_across_worker_counts(self, tmp_path, dataset):
        # Per-case keys use the derived seed, so hits survive re-sharding.
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:6]))
        Campaign(["llm_only"], small, seed=SEED, shard_size=2,
                 cache=cache).run()
        warm = Campaign(["llm_only"], small, seed=SEED, shard_size=3,
                        workers=2, executor="process", cache=cache).run()
        assert warm.telemetry.cache_counts() == (len(small), 0)

    @pytest.mark.parametrize("change", [
        dict(seed=SEED + 1),
        dict(model="gpt-3.5"),
        dict(temperature=0.3),
    ])
    def test_campaign_parameter_changes_invalidate(self, tmp_path, dataset,
                                                   change):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:3]))
        base = dict(seed=SEED, model="gpt-4", temperature=0.5)
        Campaign(["llm_only"], small, cache=cache, **base).run()
        rerun = Campaign(["llm_only"], small, cache=cache,
                         **{**base, **change}).run()
        assert rerun.telemetry.cache_counts() == (0, len(small))

    def test_spec_change_invalidates(self, tmp_path, dataset):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:3]))
        Campaign(["rustbrain"], small, seed=SEED, cache=cache).run()
        rerun = Campaign(["rustbrain?kb=off"], small, seed=SEED,
                         cache=cache).run()
        assert rerun.telemetry.cache_counts() == (0, len(small))

    def test_case_source_change_invalidates(self, tmp_path, dataset):
        import dataclasses
        cache = ResultCache(tmp_path / "cache")
        case = list(dataset)[0]
        Campaign(["llm_only"], Dataset((case,)), seed=SEED,
                 cache=cache).run()
        edited = dataclasses.replace(
            case, source=case.source.replace("fn main() {",
                                             "fn main() {\n    let _pr2 = 1;"))
        rerun = Campaign(["llm_only"], Dataset((edited,)), seed=SEED,
                         cache=cache).run()
        assert rerun.telemetry.cache_counts() == (0, 1)

    def test_shared_isolation_uses_arm_entries(self, tmp_path, dataset):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:4]))
        cold = Campaign(["rustbrain"], small, seed=SEED, isolation="shared",
                        cache=cache).run()
        assert len(cache) == 1  # one arm entry, not one per case
        warm = Campaign(["rustbrain"], small, seed=SEED, isolation="shared",
                        cache=cache).run()
        assert warm.telemetry.cache_counts() == (len(small), 0)
        assert warm.arms[0].reports == cold.arms[0].reports

    def test_shared_pooled_arms_hit_cache(self, tmp_path, dataset):
        cache = ResultCache(tmp_path / "cache")
        small = Dataset(tuple(list(dataset)[:4]))
        arms = ["rustbrain?seed=3", "rustbrain?seed=11"]
        kwargs = dict(isolation="shared", workers=2, executor="process",
                      cache=cache)
        cold = Campaign(arms, small, **kwargs).run()
        warm = Campaign(arms, small, **kwargs).run()
        assert warm.telemetry.cache_counts() == (len(small) * len(arms), 0)
        assert [arm.reports for arm in warm.arms] == \
            [arm.reports for arm in cold.arms]

    def test_cache_dir_and_cache_are_exclusive(self, tmp_path, dataset):
        with pytest.raises(ValueError, match="not both"):
            Campaign(["llm_only"], dataset,
                     cache=ResultCache(tmp_path / "a"),
                     cache_dir=tmp_path / "b")


class TestInjectedIOFaults:
    """The cache's failure contract: injected I/O errors degrade to
    misses (counted in ``io_errors``) and never escape to the caller."""

    def test_get_with_injected_fault_is_a_miss(self, cache):
        from repro.engine.faults import install
        cache.put("key", [_report()])
        # A fresh instance over the same directory: the memory layer is
        # empty, so the read really goes to (faulted) disk.
        reader = ResultCache(cache.root)
        previous = install("cache:io=1")
        try:
            assert reader.get("key") is None
        finally:
            install(previous)
        counts = reader.counts()
        assert counts["io_errors"] >= 1
        assert counts["misses"] == 1
        # Fault plan gone: the entry was never damaged, only masked.
        assert reader.get("key") is not None

    def test_put_with_injected_fault_keeps_the_memory_layer(self, cache,
                                                            tmp_path):
        from repro.engine.faults import install
        previous = install("cache:io=1")
        try:
            cache.put("key", [_report()])
            # Disk write was swallowed; in-process readers still hit.
            assert cache.get("key") is not None
        finally:
            install(previous)
        assert cache.counts()["io_errors"] >= 1
        # A fresh instance over the same directory sees no entry.
        assert ResultCache(cache.root).get("key") is None

    def test_concurrent_chaos_never_raises(self, cache):
        # Threads hammer put/get under a 50% injected I/O failure rate;
        # the invariant is simply "no exception ever escapes the cache".
        from repro.engine.faults import install
        errors = []
        previous = install("cache:io=0.5,seed=3")
        try:
            def hammer(worker):
                try:
                    for i in range(50):
                        key = f"w{worker}-{i % 7}"
                        cache.put(key, [_report(case=key)])
                        found = cache.get(key)
                        # The memory layer always has what we just put.
                        assert found is not None
                        cache.get(f"w{(worker + 1) % 8}-{i % 7}")
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hammer, args=(n,))
                       for n in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            install(previous)
        assert errors == []
        assert cache.counts()["io_errors"] > 0
