"""Fault plans, deterministic injection, and retry/backoff policies."""

import pytest

from repro.engine import faults as faults_mod
from repro.engine.faults import (DEFAULT_DEPTH, EMPTY_PLAN, FAULT_STATS,
                                 CacheIOFault, FaultPlan, FaultSpecError,
                                 TransientLLMError, TransientLLMTimeout,
                                 TransientServiceError, active_plan, install,
                                 maybe_inject)
from repro.engine.retry import (LLM_RETRY, RETRY_EVENTS, RetryNotifier,
                                RetryPolicy)
from repro.llm.client import LLMClient


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Keep every test hermetic: no env plan, no leftover override."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    previous = install(None)
    yield
    install(previous)


class TestParsing:
    def test_empty_and_none_give_the_empty_plan(self):
        assert FaultPlan.parse("") is EMPTY_PLAN
        assert FaultPlan.parse(None) is EMPTY_PLAN
        assert not EMPTY_PLAN.enabled

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "llm:rate=0.1;worker:crash=0.05;cache:io=0.02,seed=7")
        assert plan.rate("llm", "rate") == pytest.approx(0.1)
        assert plan.rate("worker", "crash") == pytest.approx(0.05)
        assert plan.rate("cache", "io") == pytest.approx(0.02)
        assert plan.seed == 7
        assert plan.depth == DEFAULT_DEPTH
        assert plan.enabled

    def test_globals_may_ride_in_any_clause(self):
        plan = FaultPlan.parse("llm:timeout=0.2,depth=3;seed=9")
        assert plan.depth == 3
        assert plan.seed == 9

    def test_round_trips_through_to_string(self):
        for text in ("llm:rate=0.1;worker:crash=0.05;cache:io=0.02,seed=7",
                     "service:fail=0.5,depth=4,hang_seconds=0.01",
                     "worker:hang=1,seed=3", ""):
            plan = FaultPlan.parse(text)
            assert FaultPlan.parse(plan.to_string()) == plan

    @pytest.mark.parametrize("bad", [
        "nosuchsite:rate=0.1",          # unknown site
        "llm:nosuchkind=0.1",           # unknown kind for the site
        "llm:rate=1.5",                 # rate out of [0, 1]
        "llm:rate=banana",              # non-numeric
        "llm:rate",                     # missing '='
        "rate=0.1",                     # site-less non-global assignment
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_coerce(self):
        plan = FaultPlan.parse("llm:rate=0.5")
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("llm:rate=0.5") == plan
        assert FaultPlan.coerce(None) is EMPTY_PLAN  # no ambient plan


class TestDecisions:
    def test_decide_is_deterministic_and_order_free(self):
        plan = FaultPlan.parse("llm:rate=0.3,seed=11")
        first = [plan.decide("llm", "rate", f"k{i}") for i in range(200)]
        second = [plan.decide("llm", "rate", f"k{i}") for i in range(200)]
        assert first == second
        assert any(first) and not all(first)

    def test_observed_rate_tracks_configured_rate(self):
        plan = FaultPlan.parse("llm:rate=0.1,seed=1")
        hits = sum(plan.decide("llm", "rate", f"key{i}")
                   for i in range(2000))
        assert 120 < hits < 280  # ~200 expected; generous determinism band

    def test_depth_bounds_consecutive_failures(self):
        plan = FaultPlan.parse("llm:rate=1,depth=2")
        assert plan.decide("llm", "rate", "k", attempt=0)
        assert plan.decide("llm", "rate", "k", attempt=1)
        assert not plan.decide("llm", "rate", "k", attempt=2)
        assert not plan.decide("llm", "rate", "k", attempt=99)

    def test_seed_changes_the_decision_pattern(self):
        base = FaultPlan.parse("llm:rate=0.5,seed=1")
        other = FaultPlan.parse("llm:rate=0.5,seed=2")
        pattern = [base.decide("llm", "rate", f"k{i}") for i in range(64)]
        assert pattern != [other.decide("llm", "rate", f"k{i}")
                           for i in range(64)]


class TestMaybeInject:
    def test_raises_typed_faults_and_counts_them(self):
        FAULT_STATS.reset()
        install("llm:rate=1;cache:io=1;service:fail=1")
        with pytest.raises(TransientLLMError):
            maybe_inject("llm", key="a")
        with pytest.raises(CacheIOFault):
            maybe_inject("cache", key="a")
        with pytest.raises(TransientServiceError):
            maybe_inject("service", key="a")
        snapshot = FAULT_STATS.snapshot()
        assert snapshot["injected"]["llm:rate"] >= 1
        assert snapshot["injected"]["cache:io"] >= 1
        assert snapshot["total"] >= 3

    def test_timeout_is_a_transient_llm_error(self):
        install("llm:timeout=1")
        with pytest.raises(TransientLLMTimeout):
            maybe_inject("llm", key="x")
        assert issubclass(TransientLLMTimeout, TransientLLMError)

    def test_cache_fault_is_an_oserror(self):
        # The cache's existing corrupt-entry handling catches OSError;
        # the injected fault must ride that path.
        assert issubclass(CacheIOFault, OSError)

    def test_noop_without_a_plan(self):
        maybe_inject("llm", key="anything")  # must not raise

    def test_env_var_feeds_active_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "llm:rate=0.25,seed=5")
        assert active_plan().rate("llm", "rate") == pytest.approx(0.25)
        monkeypatch.setenv("REPRO_FAULTS", "llm:rate=0.75")
        assert active_plan().rate("llm", "rate") == pytest.approx(0.75)

    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "llm:rate=0.25")
        previous = install("llm:rate=0.9")
        try:
            assert active_plan().rate("llm", "rate") == pytest.approx(0.9)
        finally:
            install(previous)


class TestRetryPolicy:
    def test_delays_are_capped_exponential_and_deterministic(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.5)
        delays = [policy.delay_for(attempt, "key") for attempt in range(6)]
        assert delays == [policy.delay_for(a, "key") for a in range(6)]
        for attempt, delay in enumerate(delays):
            capped = min(0.5, 0.1 * 2.0 ** attempt)
            assert capped <= delay <= capped * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, max_delay=10.0,
                             jitter=0.0)
        assert [policy.delay_for(a) for a in range(4)] == \
            [0.1, 0.2, 0.4, 0.8]

    def test_run_retries_then_succeeds(self):
        calls = []
        policy = RetryPolicy(attempts=4, base_delay=0, jitter=0,
                             sleep=lambda _s: None)

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise TransientLLMError("boom")
            return "ok"

        events = []
        assert policy.run(flaky, site="llm", key="k",
                          retryable=TransientLLMError,
                          on_retry=events.append) == "ok"
        assert calls == [0, 1, 2]
        assert [event.attempt for event in events] == [1, 2]
        assert all(event.site == "llm" for event in events)

    def test_run_exhaustion_propagates_the_final_error(self):
        policy = RetryPolicy(attempts=3, base_delay=0, jitter=0,
                             sleep=lambda _s: None)

        def always(attempt):
            raise TransientLLMError(f"attempt {attempt}")

        with pytest.raises(TransientLLMError, match="attempt 2"):
            policy.run(always, site="llm", key="k",
                       retryable=TransientLLMError)

    def test_non_retryable_errors_pass_straight_through(self):
        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)

        def broken(attempt):
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.run(broken, site="llm", key="k",
                       retryable=TransientLLMError)

    def test_notifier_counts_and_scoped_subscription(self):
        notifier = RetryNotifier()
        seen = []
        policy = RetryPolicy(attempts=2, base_delay=0, jitter=0,
                             sleep=lambda _s: None)
        with RETRY_EVENTS.subscribed(seen.append):
            def once(attempt):
                if attempt == 0:
                    raise TransientLLMError("x")
                return attempt
            policy.run(once, site="llm", key="k",
                       retryable=TransientLLMError)
        assert len(seen) == 1
        # Unsubscribed now: further emissions are not delivered.
        notifier.emit(seen[0])
        assert len(seen) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestLLMClientUnderFaults:
    """The tentpole invariant: retries replay the same seed stream, so a
    faulted client is byte-identical to a fault-free one."""

    PLAN = "llm:rate=0.35,seed=13"

    def _transcript(self, client):
        out = []
        for index in range(12):
            out.append(client.charge(f"task{index}",
                                     f"prompt {index}").random())
            out.extend(rng.random() for rng in
                       client.generate_batch("gen", f"p{index}", 3))
        return out

    def test_faulted_equals_fault_free(self):
        clean = self._transcript(LLMClient("gpt-4", seed=5))
        previous = install(self.PLAN)
        try:
            fast = RetryPolicy(attempts=4, base_delay=0, jitter=0,
                               sleep=lambda _s: None)
            faulted = self._transcript(LLMClient("gpt-4", seed=5,
                                                 retry=fast))
        finally:
            install(previous)
        assert faulted == clean

    def test_faults_actually_fired(self):
        RETRY_EVENTS.reset()
        previous = install(self.PLAN)
        try:
            fast = RetryPolicy(attempts=4, base_delay=0, jitter=0,
                               sleep=lambda _s: None)
            self._transcript(LLMClient("gpt-4", seed=5, retry=fast))
        finally:
            install(previous)
        assert RETRY_EVENTS.counts().get("llm", 0) > 0

    def test_stats_untouched_by_failed_attempts(self):
        clean = LLMClient("gpt-4", seed=5)
        self._transcript(clean)
        previous = install(self.PLAN)
        try:
            fast = RetryPolicy(attempts=4, base_delay=0, jitter=0,
                               sleep=lambda _s: None)
            faulted = LLMClient("gpt-4", seed=5, retry=fast)
            self._transcript(faulted)
        finally:
            install(previous)
        # Same successful calls -> same accounting, to the second.
        assert faulted.stats.call_count == clean.stats.call_count
        assert faulted.stats.total_tokens == clean.stats.total_tokens
        assert faulted.clock.elapsed == clean.clock.elapsed

    def test_exhaustion_with_depth_above_attempts(self):
        # depth > attempts means injected faults CAN exhaust the budget;
        # the typed transient error must then surface unchanged.
        previous = install("llm:rate=1,depth=99")
        try:
            fast = RetryPolicy(attempts=3, base_delay=0, jitter=0,
                               sleep=lambda _s: None)
            client = LLMClient("gpt-4", seed=5, retry=fast)
            with pytest.raises(TransientLLMError):
                client.charge("task", "prompt")
        finally:
            install(previous)

    def test_default_depth_guarantees_completion(self):
        # rate=1 with the default depth of 2: every call fails twice and
        # succeeds on the third attempt of the 4-attempt stock policy.
        previous = install("llm:rate=1")
        try:
            fast = RetryPolicy(attempts=LLM_RETRY.attempts, base_delay=0,
                               jitter=0, sleep=lambda _s: None)
            client = LLMClient("gpt-4", seed=5, retry=fast)
            assert client.charge("task", "prompt") is not None
        finally:
            install(previous)


def test_module_no_ambient_state_leak():
    """The autouse fixture restored the override; env is clean too."""
    assert faults_mod._override is None or isinstance(
        faults_mod._override, FaultPlan)
