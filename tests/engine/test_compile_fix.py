"""Tests for the checker-guided ``compile_fix`` engine family."""

import pytest

from repro.check import check_source
from repro.corpus import load_compile_dataset, load_dataset
from repro.engine import create_engine
from repro.engine.registry import available_engines

TYPO_SOURCE = (
    'fn main() {\n'
    '    let count = 4;\n'
    '    let total = cuont + 1;\n'
    '    println!("{}", total);\n'
    '}\n'
)

UB_CASE = next(iter(load_dataset()))


class TestRegistration:
    def test_registered_with_tags(self):
        info = next(info for info in available_engines()
                    if info.name == "compile_fix")
        assert "static" in info.tags
        assert "compile" in info.tags

    def test_spec_overrides_parse(self):
        engine = create_engine("compile_fix?attempts=1", model="gpt-4")
        assert engine.config.attempts == 1

    def test_unknown_option_rejected(self):
        from repro.engine.registry import EngineConfigError
        with pytest.raises(EngineConfigError):
            create_engine("compile_fix?rounds=2")


class TestRepair:
    def test_repairs_a_typo_source(self):
        engine = create_engine("compile_fix", model="gpt-4", seed=3)
        outcome = engine.repair(TYPO_SOURCE)
        assert outcome.passed
        assert check_source(outcome.repaired_source).ok
        assert outcome.llm_calls >= 1
        assert outcome.tokens > 0

    def test_compiling_ub_input_fails_fast_with_reason(self):
        engine = create_engine("compile_fix", model="gpt-4", seed=3)
        outcome = engine.repair(UB_CASE.source)
        assert not outcome.passed
        assert outcome.failure_reason == "checks clean but UB remains"

    def test_diagnose_only_source_reports_no_suggestion(self):
        engine = create_engine("compile_fix", model="gpt-4", seed=3)
        outcome = engine.repair("fn main() {\n    let x = true + 1;\n}\n")
        assert not outcome.passed
        assert outcome.failure_reason == "no machine-applicable suggestion"

    def test_first_attempt_condition_caps_rounds(self):
        engine = create_engine("compile_fix?attempts=1", model="gpt-3.5",
                               seed=11)
        outcomes = [engine.repair(case.source)
                    for case in load_compile_dataset()]
        assert any(o.failure_reason == "attempts exhausted"
                   for o in outcomes)

    def test_deterministic_under_seed(self):
        def sweep():
            engine = create_engine("compile_fix", model="gpt-4", seed=5)
            return [(o.passed, o.tokens, o.seconds)
                    for o in (engine.repair(c.source)
                              for c in load_compile_dataset())]
        assert sweep() == sweep()


class TestCascadeComposition:
    def test_cascade_escalates_ub_to_dynamic_member(self):
        engine = create_engine(
            "cascade?members=compile_fix:gpt-4+rustbrain:gpt-4", seed=3)
        outcome = engine.repair(UB_CASE.source, difficulty=UB_CASE.difficulty)
        assert outcome.passed

    def test_cascade_handles_non_compiling_input(self):
        engine = create_engine(
            "cascade?members=compile_fix:gpt-4+rustbrain:gpt-4", seed=3)
        outcome = engine.repair(TYPO_SOURCE)
        assert outcome.passed
        assert check_source(outcome.repaired_source).ok
