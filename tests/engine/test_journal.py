"""Crash-safe journal: durability, torn tails, and byte-identical resume."""

import json

import pytest

from repro.corpus.dataset import load_dataset
from repro.engine import Campaign, CampaignJournal, JournalError
from repro.engine.journal import JOURNAL_SCHEMA
from repro.engine.types import RepairReport
from repro.miri.errors import UbKind

ENGINES = ["llm_only", "rustbrain?kb=off"]
SEED = 3


def _report(name="case", passed=True):
    return RepairReport(case=name, engine="llm_only",
                        category=UbKind.UNINIT, passed=passed,
                        acceptable=passed, repaired_source="fn main() {}",
                        seconds=1.0, tokens=10, llm_calls=3,
                        solutions_tried=1, steps_executed=2,
                        hallucinations=0, rollbacks=0,
                        used_knowledge_base=True, used_feedback=True)


@pytest.fixture()
def dataset():
    return load_dataset().subset([UbKind.UNINIT, UbKind.PANIC])


class TestJournalFile:
    def test_create_append_reload(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        assert journal.open("fp") == 0
        journal.append("k1", [_report("a")], kind="case", arm="llm_only",
                       index=0)
        journal.append("k2", [_report("b")], kind="case", arm="llm_only",
                       index=1)
        journal.close()

        fresh = CampaignJournal(tmp_path)
        assert fresh.open("fp") == 2
        assert "k1" in fresh and "k2" in fresh and len(fresh) == 2
        (replayed,) = fresh.get("k1")
        assert replayed.case == "a"
        assert fresh.replayed == 1
        assert fresh.get("missing") is None

    def test_duplicate_appends_are_ignored(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp")
        journal.append("k", [_report("a")])
        journal.append("k", [_report("DIFFERENT")])
        journal.close()
        fresh = CampaignJournal(tmp_path)
        fresh.open("fp")
        assert len(fresh) == 1
        assert fresh.get("k")[0].case == "a"
        assert journal.appended == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp")
        journal.append("k1", [_report("a")])
        journal.append("k2", [_report("b")])
        journal.close()
        # Simulate a SIGKILL mid-append: the last line is half-written.
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw + b'{"kind": "case", "key": "k3"')
        fresh = CampaignJournal(tmp_path)
        assert fresh.open("fp") == 2
        assert fresh.skipped_torn == 1
        assert "k3" not in fresh

    def test_midfile_corruption_refuses_to_resume(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp")
        journal.append("k1", [_report("a")])
        journal.append("k2", [_report("b")])
        journal.close()
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a NON-final record
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            CampaignJournal(tmp_path).open("fp")

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp-one")
        journal.close()
        with pytest.raises(JournalError, match="fingerprint"):
            CampaignJournal(tmp_path).open("fp-two")

    def test_wrong_schema_refuses(self, tmp_path):
        path = tmp_path / "campaign.journal"
        path.write_text('{"schema": "something/else", "fingerprint": "fp"}\n')
        with pytest.raises(JournalError, match="not a"):
            CampaignJournal(tmp_path).open("fp")

    def test_header_is_the_documented_schema(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp")
        journal.close()
        header = json.loads(journal.path.read_text().splitlines()[0])
        assert header == {"schema": JOURNAL_SCHEMA, "fingerprint": "fp"}

    def test_append_requires_open(self, tmp_path):
        with pytest.raises(JournalError, match="not open"):
            CampaignJournal(tmp_path).append("k", [_report()])

    def test_open_is_idempotent(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.open("fp")
        journal.append("k", [_report()])
        assert journal.open("fp") == 1
        with pytest.raises(JournalError, match="fingerprint"):
            journal.open("other")


class TestCampaignResume:
    """The tentpole gate: interrupted + resumed == uninterrupted, byte for
    byte, with zero journaled cases re-executed."""

    def _campaign(self, dataset, journal=None, **kwargs):
        params = dict(seed=SEED, workers=2, shard_size=4)
        params.update(kwargs)
        return Campaign(ENGINES, dataset, journal=journal, **params)

    def test_resume_is_byte_identical(self, dataset, tmp_path):
        baseline = self._campaign(dataset).run().to_dict()

        # First run journals everything...
        first_dir = tmp_path / "j"
        first = self._campaign(dataset, journal=str(first_dir))
        first.run()
        assert first.journal.appended == len(dataset) * len(ENGINES)
        first.journal.close()

        # ...the "resumed" run replays it all and executes nothing new.
        resumed = self._campaign(dataset, journal=str(first_dir))
        result = resumed.run()
        assert resumed.journal.appended == 0
        assert resumed.journal.replayed > 0
        resumed.journal.close()

        assert json.dumps(result.to_dict(), sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)

    def test_partial_journal_resumes_only_the_missing(self, dataset,
                                                      tmp_path):
        full_dir, cut_dir = tmp_path / "full", tmp_path / "cut"
        full = self._campaign(dataset, journal=str(full_dir))
        baseline = full.run().to_dict()
        total = full.journal.appended
        full.journal.close()

        # Forge an "interrupted" journal: the full journal minus its
        # last few records (as if SIGKILL landed mid-campaign).
        cut_dir.mkdir()
        lines = (full_dir / "campaign.journal").read_text().splitlines()
        kept = lines[:1 + max(1, (total - 3))]
        (cut_dir / "campaign.journal").write_text("\n".join(kept) + "\n")

        resumed = self._campaign(dataset, journal=str(cut_dir))
        result = resumed.run()
        assert resumed.journal.replayed == len(kept) - 1
        assert resumed.journal.appended == total - (len(kept) - 1)
        resumed.journal.close()
        assert json.dumps(result.to_dict(), sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)

    def test_resume_at_different_parallelism(self, dataset, tmp_path):
        baseline = self._campaign(dataset).run().to_dict()
        jdir = tmp_path / "j"
        first = self._campaign(dataset, journal=str(jdir))
        first.run()
        first.journal.close()
        # Same experiment, different workers/shards/executor: the
        # fingerprint deliberately permits this.
        resumed = self._campaign(dataset, journal=str(jdir), workers=4,
                                 shard_size=2, executor="process")
        result = resumed.run()
        assert resumed.journal.appended == 0
        resumed.journal.close()
        # The parallelism knobs land in the config dict (and the round
        # count), but every *outcome* is byte-identical.
        assert json.dumps(result.to_dict()["arms"], sort_keys=True) == \
            json.dumps(baseline["arms"], sort_keys=True)

    def test_different_seed_refuses_the_journal(self, dataset, tmp_path):
        jdir = tmp_path / "j"
        first = self._campaign(dataset, journal=str(jdir))
        first.run()
        first.journal.close()
        other = self._campaign(dataset, journal=str(jdir), seed=SEED + 1)
        with pytest.raises(JournalError, match="fingerprint"):
            other.run()

    def test_shared_isolation_journals_whole_arms(self, dataset, tmp_path):
        jdir = tmp_path / "j"
        first = Campaign(ENGINES, dataset, seed=SEED, isolation="shared",
                         journal=str(jdir))
        baseline = first.run().to_dict()
        assert first.journal.appended == len(ENGINES)
        first.journal.close()
        resumed = Campaign(ENGINES, dataset, seed=SEED, isolation="shared",
                           journal=str(jdir))
        result = resumed.run()
        assert resumed.journal.appended == 0
        assert resumed.journal.replayed == len(ENGINES)
        resumed.journal.close()
        assert json.dumps(result.to_dict(), sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)
