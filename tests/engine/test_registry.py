"""Registry: registration, lookup, creation, and error surfaces."""

import pytest

from repro.baselines.llm_only import LLMOnlyRepair
from repro.baselines.rustassistant import RustAssistant
from repro.core.agents.rollback import RollbackPolicy
from repro.core.pipeline import RustBrain
from repro.engine import (EngineConfigError, EngineRegistry, RepairEngine,
                          UnknownEngineError, available_engines,
                          create_engine)

BUILTIN_NAMES = {
    "llm_only", "rustassistant", "rustbrain", "rustbrain_nokb",
    "rustbrain_nofeedback", "rustbrain_norollback",
    "rustbrain_initial_rollback", "rustbrain_nopruning",
}


class TestBuiltins:
    def test_all_paper_arms_registered(self):
        names = {info.name for info in available_engines()}
        assert BUILTIN_NAMES <= names

    def test_infos_carry_summaries(self):
        for info in available_engines():
            assert info.summary, f"{info.name} has no summary"

    def test_engines_satisfy_protocol(self):
        for name in sorted(BUILTIN_NAMES):
            engine = create_engine(name, seed=1)
            assert isinstance(engine, RepairEngine)


class TestCreate:
    def test_create_by_name(self):
        assert isinstance(create_engine("rustbrain"), RustBrain)
        assert isinstance(create_engine("llm_only"), LLMOnlyRepair)
        assert isinstance(create_engine("rustassistant"), RustAssistant)

    def test_create_by_spec_string(self):
        engine = create_engine("rustbrain?kb=off&rollback=none", seed=3)
        assert engine.kb is None
        assert engine.config.rollback is RollbackPolicy.NONE
        assert engine.config.seed == 3

    def test_spec_params_override_kwargs(self):
        engine = create_engine("rustbrain?temperature=0.2&seed=9",
                               temperature=0.5, seed=1)
        assert engine.config.temperature == 0.2
        assert engine.config.seed == 9

    def test_variant_defaults_overridable(self):
        engine = create_engine("rustbrain_nokb?kb=on")
        assert engine.kb is not None

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownEngineError) as exc:
            create_engine("quantum")
        assert "quantum" in str(exc.value)
        assert "rustbrain" in str(exc.value)  # lists registered names

    def test_unknown_engine_is_value_error(self):
        # make_system's historical contract.
        with pytest.raises(ValueError):
            create_engine("quantum")

    def test_unknown_config_option_raises(self):
        with pytest.raises(EngineConfigError) as exc:
            create_engine("rustbrain?warp_drive=on")
        assert "warp_drive" in str(exc.value)

    @pytest.mark.parametrize("bad", [
        "rustbrain?kb=none",          # bool field, non-bool word
        "rustbrain?feedback=7",       # bool field, int
        "rustbrain?n_solutions=lots",  # int field, string
        "rustbrain?detector_seconds=fast",  # float field, string
    ])
    def test_type_mismatched_override_raises(self, bad):
        # A typo like kb=none must NOT silently run the arm with the KB on.
        with pytest.raises(EngineConfigError, match="expects"):
            create_engine(bad)


class TestRegistration:
    def test_decorator_and_lookup(self):
        registry = EngineRegistry(_builtins_loaded=True)

        @registry.register("custom", summary="a test arm", tags=("test",))
        def build(*, model="gpt-4", seed=0, temperature=0.5, **overrides):
            return ("engine", model, seed)

        info = registry.get("custom")
        assert info.summary == "a test arm"
        assert info.tags == ("test",)
        assert registry.create("custom", seed=5) == ("engine", "gpt-4", 5)
        assert "custom" in registry

    def test_duplicate_name_rejected(self):
        registry = EngineRegistry(_builtins_loaded=True)
        registry.register("arm")(lambda **kw: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("arm")(lambda **kw: None)

    def test_replace_allows_overwrite(self):
        registry = EngineRegistry(_builtins_loaded=True)
        registry.register("arm")(lambda **kw: "old")
        registry.register("arm", replace=True)(lambda **kw: "new")
        assert registry.create("arm") == "new"


class TestMakeSystemShim:
    def test_shim_matches_registry(self):
        from repro.bench.experiments import make_system
        shim = make_system("rustbrain_norollback", "gpt-4", seed=2,
                           n_solutions=4)
        direct = create_engine("rustbrain_norollback", model="gpt-4", seed=2,
                               n_solutions=4)
        assert shim.config == direct.config

    def test_shim_accepts_spec_strings(self):
        # The grammar is shared by CLI, benchmarks, and code — including
        # the deprecated entry points.
        from repro.bench.experiments import make_system
        engine = make_system("rustbrain?kb=off&n_solutions=4")
        assert engine.kb is None
        assert engine.config.n_solutions == 4

    def test_evaluate_spec_rejects_conflicting_seeds(self):
        # Repeat-sampling across seeds must not be silently collapsed by a
        # spec-pinned seed (zero-variance samples).
        from repro.bench.experiments import evaluate_spec
        with pytest.raises(ValueError, match="pins its own seed"):
            evaluate_spec("rustbrain?seed=5", seed=3)
