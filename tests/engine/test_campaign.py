"""Campaign runner: determinism across worker counts, telemetry, JSON."""

import json

import pytest

from repro.corpus.dataset import Dataset, load_dataset
from repro.engine import (Campaign, CampaignObserver, CaseFinished,
                          CaseStarted, EngineFinished, EngineStarted,
                          RoundFinished, SystemResults)
from repro.miri.errors import UbKind

ENGINES = ["llm_only", "rustbrain?kb=off"]
SEED = 3


@pytest.fixture(scope="module")
def dataset():
    # STACK_BORROW included deliberately: its diagnostics embed borrow-tag
    # numbers, the state that once leaked across cases (see miri.borrows).
    return load_dataset().subset([UbKind.UNINIT, UbKind.PANIC,
                                  UbKind.STACK_BORROW])


@pytest.fixture(scope="module")
def serial_run(dataset):
    return Campaign(ENGINES, dataset, seed=SEED, workers=1,
                    shard_size=4).run()


@pytest.fixture(scope="module")
def parallel_run(dataset):
    return Campaign(ENGINES, dataset, seed=SEED, workers=4,
                    shard_size=4).run()


@pytest.fixture(scope="module")
def process_run(dataset):
    return Campaign(ENGINES, dataset, seed=SEED, workers=4,
                    shard_size=4, executor="process").run()


class TestDeterminism:
    def test_parallel_equals_serial_system_results(self, serial_run,
                                                   parallel_run):
        assert serial_run.by_label() == parallel_run.by_label()

    def test_parallel_equals_serial_json(self, serial_run, parallel_run):
        serial = serial_run.to_dict()
        parallel = parallel_run.to_dict()
        # Everything but the workers knob itself is identical.
        assert serial["arms"] == parallel["arms"]
        assert serial["telemetry"] == parallel["telemetry"]
        assert json.dumps(serial["arms"], sort_keys=True) == \
            json.dumps(parallel["arms"], sort_keys=True)

    def test_rerun_is_stable(self, dataset, parallel_run):
        again = Campaign(ENGINES, dataset, seed=SEED, workers=2,
                         shard_size=4).run()
        assert again.by_label() == parallel_run.by_label()

    def test_process_pool_equals_serial_json(self, serial_run, process_run):
        # The acceptance bar for the process backend: a 4-worker process
        # pool is byte-identical to a serial run, arms and telemetry both.
        serial = serial_run.to_dict()
        pooled = process_run.to_dict()
        assert json.dumps(serial["arms"], sort_keys=True) == \
            json.dumps(pooled["arms"], sort_keys=True)
        assert serial["telemetry"] == pooled["telemetry"]

    def test_process_pool_equals_thread_pool(self, parallel_run, process_run):
        assert parallel_run.by_label() == process_run.by_label()

    def test_process_reports_stay_in_dataset_order(self, dataset,
                                                   process_run):
        names = [case.name for case in dataset]
        for arm in process_run.arms:
            assert [report.case for report in arm.reports] == names

    def test_serial_executor_matches_default(self, dataset, serial_run):
        explicit = Campaign(ENGINES, dataset, seed=SEED, workers=1,
                            shard_size=4, executor="serial").run()
        assert explicit.by_label() == serial_run.by_label()

    def test_shared_pooled_arms_equal_serial_arms(self, dataset):
        # Arm-level process pooling: each arm keeps its exact stateful
        # semantics, so the pooled sweep reproduces the serial one.
        small = Dataset(tuple(list(dataset)[:6]))
        arms = ["rustbrain?seed=3", "rustbrain?seed=11", "rustbrain?seed=23"]
        serial = Campaign(arms, small, isolation="shared", workers=1).run()
        pooled = Campaign(arms, small, isolation="shared", workers=3,
                          executor="process").run()
        assert json.dumps([arm.to_dict() for arm in serial.arms],
                          sort_keys=True) == \
            json.dumps([arm.to_dict() for arm in pooled.arms],
                       sort_keys=True)
        assert serial.telemetry.to_dict() == pooled.telemetry.to_dict()

    def test_warm_shared_pooled_campaign_spawns_no_pool(self, dataset,
                                                        tmp_path,
                                                        monkeypatch):
        # A fully cache-warm pooled shared campaign replays every arm from
        # disk; leasing a worker pool for nothing is a bug.
        from repro.engine import EXECUTOR_SERVICE, ResultCache
        small = Dataset(tuple(list(dataset)[:4]))
        arms = ["rustbrain?seed=3", "rustbrain?seed=11"]
        cache = ResultCache(tmp_path / "cache")
        cold = Campaign(arms, small, isolation="shared", workers=2,
                        executor="process", cache=cache).run()

        def boom_lease(*_args, **_kwargs):
            raise AssertionError("a pool was leased for a warm campaign")

        monkeypatch.setattr(EXECUTOR_SERVICE, "lease", boom_lease)
        monkeypatch.setattr(EXECUTOR_SERVICE, "ephemeral", boom_lease)
        warm = Campaign(arms, small, isolation="shared", workers=2,
                        executor="process", cache=cache).run()
        assert json.dumps([arm.to_dict() for arm in warm.arms],
                          sort_keys=True) == \
            json.dumps([arm.to_dict() for arm in cold.arms],
                       sort_keys=True)
        hits, misses = warm.telemetry.cache_counts()
        assert hits == len(small) * len(arms) and misses == 0

    def test_different_seed_differs(self, dataset, serial_run):
        other = Campaign(ENGINES, dataset, seed=SEED + 1, workers=1,
                         shard_size=4).run()
        assert other.by_label() != serial_run.by_label()

    def test_reports_stay_in_dataset_order(self, dataset, parallel_run):
        names = [case.name for case in dataset]
        for arm in parallel_run.arms:
            assert [report.case for report in arm.reports] == names


class TestTelemetry:
    def test_event_counts(self, dataset, serial_run):
        counts = serial_run.telemetry.to_dict()
        cases = len(dataset)
        arms = len(ENGINES)
        assert counts["engines"] == arms
        assert counts["cases_started"] == arms * cases
        assert counts["cases_finished"] == arms * cases
        rounds_per_arm = -(-cases // 4)  # ceil for shard_size=4
        assert counts["rounds"] == arms * rounds_per_arm

    def test_observer_hooks_fire_in_order(self, dataset):
        seen = []

        class Recorder(CampaignObserver):
            def on_engine_start(self, event):
                assert isinstance(event, EngineStarted)
                seen.append(("engine_start", event.engine))

            def on_engine_done(self, event):
                assert isinstance(event, EngineFinished)
                seen.append(("engine_done", event.engine))

            def on_case_start(self, event):
                assert isinstance(event, CaseStarted)
                seen.append(("case_start", event.case))

            def on_case_done(self, event):
                assert isinstance(event, CaseFinished)
                seen.append(("case_done", event.case))

            def on_round(self, event):
                assert isinstance(event, RoundFinished)
                seen.append(("round", event.round_index))

        small = Dataset(tuple(list(dataset)[:3]))
        Campaign(["llm_only"], small, seed=1, shard_size=2,
                 observers=[Recorder()]).run()
        # The paper's label convention: the plain llm_only arm is just the
        # model name (shared with bench via engine.spec.arm_label).
        assert seen[0] == ("engine_start", "gpt-4")
        assert seen[-1] == ("engine_done", "gpt-4")
        assert seen.count(("round", 0)) == 1 and ("round", 1) in seen
        assert sum(1 for kind, _ in seen if kind == "case_done") == 3

    def test_round_progress_monotonic(self, serial_run):
        for arm in serial_run.arms:
            rounds = [event for event in serial_run.telemetry.events
                      if isinstance(event, RoundFinished)
                      and event.engine == arm.label]
            completed = [event.completed for event in rounds]
            assert completed == sorted(completed)
            assert completed[-1] == len(arm.reports)


class TestSerialization:
    def test_save_and_reload(self, tmp_path, serial_run):
        path = tmp_path / "campaign.json"
        serial_run.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.campaign/4"
        assert payload["config"]["engines"] == ENGINES
        assert len(payload["arms"]) == len(ENGINES)
        for arm, spec in zip(payload["arms"], ENGINES):
            assert arm["spec"] == spec
            assert len(arm["cases"]) == payload["config"]["cases"]
            assert 0.0 <= arm["summary"]["pass_rate"] <= 1.0

    def test_system_results_round_trip(self, serial_run):
        for arm in serial_run.arms:
            reloaded = SystemResults.from_dict(arm.results.to_dict())
            assert reloaded == arm.results

    def test_adhoc_request_without_category_serializes(self):
        from repro.engine import CaseResult, create_engine
        from repro.engine.types import RepairRequest, run_request
        request = RepairRequest(name="adhoc",
                                source="fn main() { let x = 1; }")
        report = run_request(create_engine("llm_only"), request)
        payload = report.to_case_result().to_dict()
        assert payload["category"] is None
        assert CaseResult.from_dict(payload).category is None


class TestValidation:
    def test_no_engines_rejected(self, dataset):
        with pytest.raises(ValueError, match="at least one"):
            Campaign([], dataset)

    def test_bare_spec_string_is_one_arm(self, dataset):
        campaign = Campaign("llm_only", dataset)
        assert [spec.name for spec in campaign.specs] == ["llm_only"]

    def test_spec_pinned_seed_keeps_per_case_derivation(self, dataset):
        # "llm_only?seed=7" sets the arm's BASE seed; cases must still get
        # independently derived seeds (and stay worker-invariant).
        small = Dataset(tuple(list(dataset)[:6]))
        pinned = Campaign(["llm_only?seed=7"], small).run()
        parallel = Campaign(["llm_only?seed=7"], small, workers=3,
                            shard_size=2).run()
        base = Campaign(["llm_only"], small, seed=7).run()
        assert pinned.arms[0].reports == parallel.arms[0].reports
        # Same base seed by either route => identical per-case outcomes.
        assert [r.to_dict() for r in pinned.arms[0].reports] == \
            [r.to_dict() | {"engine": pinned.arms[0].label}
             for r in base.arms[0].reports]

    def test_rerun_gets_fresh_telemetry(self, dataset):
        small = Dataset(tuple(list(dataset)[:2]))
        campaign = Campaign(["llm_only"], small, seed=1)
        first = campaign.run()
        second = campaign.run()
        assert first.telemetry is not second.telemetry
        assert first.telemetry.to_dict() == second.telemetry.to_dict()
        assert second.telemetry.to_dict()["cases_finished"] == 2

    def test_bad_workers_rejected(self, dataset):
        with pytest.raises(ValueError, match="workers"):
            Campaign(ENGINES, dataset, workers=0)

    def test_bad_spec_rejected(self, dataset):
        from repro.engine import SpecError
        with pytest.raises(SpecError):
            Campaign(["rustbrain?kb"], dataset)

    def test_unknown_engine_fails_fast(self, dataset):
        # Construction must reject arm 2, not burn arm 1's sweep first.
        from repro.engine import UnknownEngineError
        with pytest.raises(UnknownEngineError):
            Campaign(["llm_only", "quantum_typo"], dataset)

    def test_unknown_config_key_fails_fast(self, dataset):
        from repro.engine import EngineConfigError
        with pytest.raises(EngineConfigError):
            Campaign(["llm_only?n_solutions=3"], dataset)

    def test_bad_isolation_rejected(self, dataset):
        with pytest.raises(ValueError, match="isolation"):
            Campaign(ENGINES, dataset, isolation="quantum")

    def test_shared_isolation_forces_serial_with_warning(self, dataset):
        # A stateful sweep cannot split within an arm: rather than silently
        # degrading to per-case engines, the campaign warns and runs serial.
        with pytest.warns(RuntimeWarning, match="forcing"):
            campaign = Campaign(ENGINES, dataset, isolation="shared",
                                workers=4)
        assert campaign.workers == 1

    def test_shared_process_multi_arm_keeps_workers(self, dataset):
        # Arm-level process pooling preserves shared semantics, so several
        # arms may keep workers > 1 without a warning.
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            campaign = Campaign(ENGINES, dataset, isolation="shared",
                                workers=2, executor="process")
        assert campaign.workers == 2

    def test_serial_executor_rejects_workers(self, dataset):
        with pytest.raises(ValueError, match="serial"):
            Campaign(ENGINES, dataset, executor="serial", workers=2)

    def test_bad_executor_rejected(self, dataset):
        with pytest.raises(ValueError, match="executor"):
            Campaign(ENGINES, dataset, executor="quantum")


class TestSharedIsolation:
    def test_matches_legacy_stateful_sweep(self, dataset):
        from repro.bench.experiments import evaluate_spec
        shared = Campaign(["rustbrain"], dataset, seed=SEED,
                          isolation="shared").run()
        legacy = evaluate_spec("rustbrain", seed=SEED, dataset=dataset)
        assert shared.arms[0].results == legacy

    def test_feedback_accumulates_across_cases(self):
        # The RQ2 self-learning effect needs cross-case state: at least one
        # later case must be repaired via recalled feedback.
        subset = load_dataset().subset([UbKind.UNINIT,
                                        UbKind.DANGLING_POINTER])
        run = Campaign(["rustbrain"], subset, seed=13,
                       isolation="shared").run()
        assert any(report.used_feedback for report in run.arms[0].reports)


class TestFaultedCampaigns:
    """Chaos determinism: campaigns under injected faults stay
    byte-identical to the fault-free run."""

    def test_llm_faults_leave_outcomes_byte_identical(self, dataset,
                                                      serial_run):
        import json
        faulted = Campaign(ENGINES, dataset, seed=SEED, workers=1,
                           shard_size=4,
                           faults="llm:rate=0.3,seed=7").run()
        clean = serial_run.to_dict()
        chaos = faulted.to_dict()
        assert json.dumps(chaos["arms"], sort_keys=True) == \
            json.dumps(clean["arms"], sort_keys=True)
        # Retries happened but never entered the serialized telemetry.
        assert chaos["telemetry"] == clean["telemetry"]
        assert faulted.telemetry.to_dict() == serial_run.telemetry.to_dict()

    def test_worker_crashes_redispatch_byte_identically(self, dataset,
                                                        serial_run):
        import json
        from repro.engine import EXECUTOR_SERVICE
        faulted = Campaign(ENGINES, dataset, seed=SEED, workers=2,
                           shard_size=4, executor="process",
                           faults="worker:crash=0.4,seed=2").run()
        assert json.dumps(faulted.to_dict()["arms"], sort_keys=True) == \
            json.dumps(serial_run.to_dict()["arms"], sort_keys=True)
        assert EXECUTOR_SERVICE.budget.in_use == 0

    def test_on_retry_telemetry_is_observable(self, dataset):
        from repro.engine import CampaignObserver

        class Collector(CampaignObserver):
            def __init__(self):
                self.retries = []

            def on_retry(self, event):
                self.retries.append(event)

        collector = Collector()
        Campaign(ENGINES, dataset, seed=SEED, workers=1,
                 faults="llm:rate=0.5,seed=1",
                 observers=[collector]).run()
        assert collector.retries
        assert all(event.site == "llm" for event in collector.retries)


class TestLegacyShims:
    def test_evaluate_system_matches_run_cases(self, dataset):
        from repro.bench.experiments import evaluate_system, make_system
        from repro.engine import run_cases
        legacy = evaluate_system(make_system("llm_only", seed=2), dataset,
                                 label="arm")
        modern = run_cases(make_system("llm_only", seed=2), dataset, "arm")
        assert legacy == modern
        assert legacy.system == "arm"
        assert len(legacy.results) == len(dataset)
