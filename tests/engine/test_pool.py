"""ExecutorService: leasing, idle reaping, the core budget, fork reset."""

import os

import pytest

from repro.engine.pool import (CoreBudget, EXECUTOR_SERVICE, ExecutorService,
                               POOL_KINDS, cancel_and_wait)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(clock):
    service = ExecutorService(idle_timeout=10.0, clock=clock,
                              budget=CoreBudget(total=4))
    yield service
    service.shutdown()


def _square(value):
    return value * value


def _die():
    # Simulates a hard worker crash (the worker:crash fault site does
    # exactly this); must be top-level to pickle across the fork.
    os._exit(3)


class TestCoreBudget:
    def test_grants_clamp_to_the_budget(self):
        budget = CoreBudget(total=4)
        assert budget.grant(3) == 3
        assert budget.available == 1
        assert budget.grant(3) == 1  # only one slot left
        budget.release(1)
        budget.release(3)
        assert budget.available == 4

    def test_exhausted_budget_still_grants_the_minimum(self):
        budget = CoreBudget(total=2)
        assert budget.grant(2) == 2
        # A starved caller gets one slot (bounded oversubscription)
        # instead of deadlocking on an unavailable machine.
        assert budget.grant(5) == 1
        assert budget.in_use == 3

    def test_release_never_goes_negative(self):
        budget = CoreBudget(total=2)
        budget.release(5)
        assert budget.available == 2

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            CoreBudget(total=2).grant(0)

    def test_total_has_a_floor_of_one(self):
        assert CoreBudget(total=0).total == 1


class TestLeasing:
    def test_lease_runs_work_and_reuses_the_pool(self, service):
        with service.lease("thread", 2) as pool:
            assert pool.submit(_square, 7).result() == 49
            first = pool
        with service.lease("thread", 2) as pool:
            assert pool is first  # same executor, no respawn
        assert service.stats.created == 1
        assert service.stats.leases == 2

    def test_bad_kind_rejected(self, service):
        with pytest.raises(ValueError, match="kind"):
            with service.lease("gpu", 2):
                pass
        assert "gpu" not in POOL_KINDS

    def test_lease_counts_against_the_budget(self, service):
        with service.lease("thread", 3):
            assert service.budget.in_use == 3
            # A nested request sees what is left.
            with service.ephemeral("thread", 3) as inner:
                assert service.budget.in_use == 4
                assert inner._max_workers == 1
        assert service.budget.in_use == 0

    def test_concurrent_leases_of_one_pool_charge_once(self, service):
        # N leases of the same shared pool share its workers, so they
        # must share one budget charge — charging per lease would starve
        # later nested grants for cores nobody is actually using.
        with service.lease("thread", 2):
            with service.lease("thread", 2):
                assert service.budget.in_use == 2
            assert service.budget.in_use == 2
        assert service.budget.in_use == 0

    def test_distinct_pools_charge_their_true_width(self, service):
        # Two concurrent pools really do hold width-A + width-B workers;
        # the budget must record that honestly (even past its total) so
        # later grants cannot hand out cores that are already busy.
        with service.lease("thread", 3):
            with service.lease("thread", 2):
                assert service.budget.in_use == 5  # > total(4), truthful
                assert service.budget.available == 0
                with service.ephemeral("thread", 3) as pool:
                    assert pool._max_workers == 1  # nothing left: floor
        assert service.budget.in_use == 0

    def test_ephemeral_constructor_failure_refunds_the_budget(
            self, service, monkeypatch):
        import repro.engine.pool as pool_module

        def boom(*_args, **_kwargs):
            raise OSError("cannot spawn")

        monkeypatch.setattr(pool_module, "ThreadPoolExecutor", boom)
        with pytest.raises(OSError):
            with service.ephemeral("thread", 2):
                pass
        assert service.budget.in_use == 0  # the grant was refunded

    def test_width_clamps_to_the_budget_total(self, service):
        with service.lease("thread", 99) as pool:
            assert pool._max_workers == 4  # budget total, not 99
        assert service.active_pools() == [("thread", 4)]

    def test_ephemeral_pools_are_private_and_torn_down(self, service):
        with service.ephemeral("thread", 2) as pool:
            assert pool.submit(_square, 3).result() == 9
        # Torn down on exit: submitting again must fail.
        with pytest.raises(RuntimeError):
            pool.submit(_square, 3)
        assert service.active_pools() == []  # never entered the table

    def test_distinct_widths_get_distinct_pools(self, service):
        with service.lease("thread", 1) as narrow:
            with service.lease("thread", 2) as wide:
                assert narrow is not wide
        assert sorted(service.active_pools()) == [("thread", 1),
                                                  ("thread", 2)]


class TestReaping:
    def test_idle_pools_are_reaped_and_recreated(self, service, clock):
        with service.lease("thread", 2) as pool:
            first = pool
        clock.advance(11.0)
        assert service.reap_idle() == 1
        assert service.active_pools() == []
        # Transparent recreation on the next lease.
        with service.lease("thread", 2) as pool:
            assert pool is not first
            assert pool.submit(_square, 4).result() == 16
        assert service.stats.created == 2
        assert service.stats.reaped == 1

    def test_young_idle_pools_survive(self, service, clock):
        with service.lease("thread", 2):
            pass
        clock.advance(9.0)
        assert service.reap_idle() == 0
        assert service.active_pools() == [("thread", 2)]

    def test_leased_pools_are_never_reaped(self, service, clock):
        with service.lease("thread", 2):
            clock.advance(100.0)
            assert service.reap_idle() == 0
        # The idle clock starts at release, not at creation.
        assert service.reap_idle() == 0
        clock.advance(100.0)
        assert service.reap_idle() == 1

    def test_reaping_happens_on_ordinary_interactions(self, service, clock):
        with service.lease("thread", 1):
            pass
        clock.advance(50.0)
        # No explicit reap_idle: the next lease sweeps expired pools.
        with service.lease("thread", 2):
            pass
        assert service.active_pools() == [("thread", 2)]
        assert service.stats.reaped == 1

    def test_negative_timeout_disables_reaping(self, clock):
        service = ExecutorService(idle_timeout=-1.0, clock=clock,
                                  budget=CoreBudget(total=2))
        try:
            with service.lease("thread", 1):
                pass
            clock.advance(1e9)
            assert service.reap_idle() == 0
            assert service.active_pools() == [("thread", 1)]
        finally:
            service.shutdown()

    def test_broken_pool_with_live_lease_is_detached_not_shutdown(
            self, service):
        # Another thread's lease must never have its executor shut down
        # underneath it; the broken pool is detached from the table and
        # torn down by its last lessee on release.
        class BrokenStub:
            _broken = "worker died"
            shutdowns = 0

            def shutdown(self, wait=True):
                BrokenStub.shutdowns += 1

        with service.lease("thread", 2) as original:
            entry = service._pools[("thread", 2)]
            real = entry.executor
            entry.executor = BrokenStub()
            # A new lease sees the broken pool, replaces it for itself...
            with service.lease("thread", 2) as replacement:
                assert replacement is not original
                assert BrokenStub.shutdowns == 0  # ...without killing it
            # Only when the original lease releases does it tear down.
            assert BrokenStub.shutdowns == 0
        assert BrokenStub.shutdowns == 1
        real.shutdown(wait=True)
        assert service.budget.in_use == 0

    def test_negative_env_timeout_reaches_the_service(self, monkeypatch):
        # The documented disable path: REPRO_POOL_IDLE_SECONDS=-1 must
        # pass through, not fall back to the default like non-positive
        # core budgets do.
        monkeypatch.setenv("REPRO_POOL_IDLE_SECONDS", "-1")
        service = ExecutorService(clock=FakeClock(),
                                  budget=CoreBudget(total=2))
        try:
            assert service.idle_timeout == -1.0
        finally:
            service.shutdown()

    def test_broken_process_pool_is_replaced(self, service):
        class Broken:
            _broken = "worker died"

            def shutdown(self, wait=True):
                pass

        with service.lease("thread", 2):
            pass
        entry = service._pools[("thread", 2)]
        entry.executor.shutdown(wait=True)
        entry.executor = Broken()
        with service.lease("thread", 2) as pool:
            assert not getattr(pool, "_broken", False)
            assert pool.submit(_square, 5).result() == 25

    def test_genuinely_killed_worker_breaks_then_recovers(self, service):
        # Not a stub: a real process pool whose worker os._exit()s, the
        # way an injected worker:crash fault dies.  The lease surfaces
        # BrokenProcessPool, releases its budget grant, and the *next*
        # lease transparently hands out a fresh working pool.
        from concurrent.futures.process import BrokenProcessPool

        with service.lease("process", 2) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.submit(_die).result()
        assert service.budget.in_use == 0
        with service.lease("process", 2) as pool:
            assert pool.submit(_square, 6).result() == 36
        assert service.budget.in_use == 0


class TestCancelAndWait:
    def test_no_task_outlives_the_error_path(self, service):
        import threading
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=10)
            return "done"

        with service.lease("thread", 1) as pool:
            blocker = pool.submit(slow)  # occupies the single worker
            assert started.wait(timeout=10)
            queued = [pool.submit(slow) for _ in range(3)]
            # Queued tasks cancel outright — they never execute.
            cancel_and_wait(queued)
            assert all(future.cancelled() for future in queued)
            # A running task cannot cancel; the call joins it instead,
            # so nothing keeps executing behind a propagating error.
            release.set()
            cancel_and_wait([blocker])
            assert blocker.done() and not blocker.cancelled()
            assert blocker.result() == "done"


class TestLifecycle:
    def test_shutdown_clears_everything(self, service):
        with service.lease("thread", 1):
            pass
        service.shutdown()
        assert service.active_pools() == []

    def test_fork_reset_starts_empty(self, service):
        with service.lease("thread", 1):
            pass
        service.budget.grant(1)
        service._reset_after_fork()
        assert service.active_pools() == []
        assert service.budget.in_use == 0
        assert service.stats.created == 0
        # And the reset service still works.
        with service.lease("thread", 1) as pool:
            assert pool.submit(_square, 6).result() == 36

    def test_global_service_exists_and_serves(self):
        with EXECUTOR_SERVICE.lease("thread", 1) as pool:
            assert pool.submit(_square, 2).result() == 4
