"""EngineSpec: parsing, formatting round-trips, typed coercion."""

import pytest

from repro.core.agents.rollback import RollbackPolicy
from repro.engine import EngineSpec, SpecError


class TestParsing:
    def test_bare_name(self):
        spec = EngineSpec.parse("rustbrain")
        assert spec.name == "rustbrain"
        assert spec.params == ()

    @pytest.mark.parametrize("text", [
        "rustbrain",
        "rustbrain?kb=off",
        "rustbrain?kb=off&rollback=none&temperature=0.2",
        "llm_only?attempts=5&model=gpt-3.5",
        "rustbrain_nokb?n_solutions=10&seed=42",
    ])
    def test_round_trip(self, text):
        assert EngineSpec.parse(text).to_string() == text
        # Parsing the formatted form is a fixed point.
        assert EngineSpec.parse(EngineSpec.parse(text).to_string()) == \
            EngineSpec.parse(text)

    def test_whitespace_stripped(self):
        assert EngineSpec.parse("  rustbrain ").name == "rustbrain"

    @pytest.mark.parametrize("bad", [
        "", "?kb=off", "Rustbrain", "rust brain", "rustbrain?kb",
        "rustbrain?=off", "rustbrain?kb=",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            EngineSpec.parse(bad)

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            EngineSpec.parse("?")


class TestCoercion:
    def test_aliases_expand(self):
        spec = EngineSpec.parse("rustbrain?kb=off&feedback=on&pruning=off")
        assert spec.overrides() == {"use_knowledge_base": False,
                                    "use_feedback": True,
                                    "use_pruning": False}

    def test_value_shapes(self):
        spec = EngineSpec.parse(
            "rustbrain?n_solutions=10&kb_coverage=0.8&max_rounds=3")
        assert spec.overrides() == {"n_solutions": 10, "kb_coverage": 0.8,
                                    "max_rounds": 3}

    @pytest.mark.parametrize("raw,policy", [
        ("none", RollbackPolicy.NONE),
        ("initial", RollbackPolicy.INITIAL),
        ("adaptive", RollbackPolicy.ADAPTIVE),
    ])
    def test_rollback_policy(self, raw, policy):
        spec = EngineSpec.parse(f"rustbrain?rollback={raw}")
        assert spec.overrides() == {"rollback": policy}

    def test_unknown_rollback_policy_raises(self):
        with pytest.raises(SpecError, match="rollback"):
            EngineSpec.parse("rustbrain?rollback=sideways").overrides()

    def test_reserved_keys_split_out(self):
        spec = EngineSpec.parse(
            "rustbrain?model=gpt-o1&seed=7&temperature=0.3&kb=off")
        assert spec.factory_kwargs() == {"model": "gpt-o1", "seed": 7,
                                         "temperature": 0.3}
        assert spec.overrides() == {"use_knowledge_base": False}

    def test_model_value_never_coerced(self):
        # A numeric-looking model name stays a string.
        spec = EngineSpec.parse("llm_only?model=4")
        assert spec.factory_kwargs() == {"model": "4"}

    def test_scientific_notation_floats(self):
        spec = EngineSpec.parse("rustbrain?temperature=2.5e-1")
        assert spec.factory_kwargs() == {"temperature": 0.25}
        assert EngineSpec.parse("rustbrain?kb_coverage=1e-1").overrides() \
            == {"kb_coverage": 0.1}

    @pytest.mark.parametrize("bad", [
        "rustbrain?seed=abc", "rustbrain?temperature=warm",
    ])
    def test_non_numeric_reserved_values_raise(self, bad):
        with pytest.raises(SpecError):
            EngineSpec.parse(bad).factory_kwargs()


class TestArmLabel:
    def test_paper_convention(self):
        from repro.engine.spec import arm_label
        assert arm_label("llm_only", "gpt-4") == "gpt-4"
        assert arm_label("rustbrain", "gpt-4") == "gpt-4+rustbrain"
        assert arm_label("rustbrain?kb=off", "gpt-4") == \
            "gpt-4+rustbrain?kb=off"
        # A parameterised llm_only arm is no longer the plain baseline.
        assert arm_label("llm_only?attempts=5", "gpt-4") == \
            "gpt-4+llm_only?attempts=5"

    def test_shared_with_bench(self):
        from repro.bench.experiments import arm_label as bench_label
        from repro.engine.spec import arm_label
        assert bench_label is arm_label


class TestMake:
    def test_make_formats_types(self):
        spec = EngineSpec.make("rustbrain", kb=False, temperature=0.2,
                               rollback=RollbackPolicy.NONE, n_solutions=10)
        assert spec.to_string() == \
            "rustbrain?kb=off&temperature=0.2&rollback=none&n_solutions=10"
        # And the formatted form coerces back to the same typed values.
        assert spec.overrides() == {"use_knowledge_base": False,
                                    "rollback": RollbackPolicy.NONE,
                                    "n_solutions": 10}
        assert spec.factory_kwargs() == {"temperature": 0.2}
