"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.rs"
    path.write_text('''
fn main() {
    let mu: MaybeUninit<i32> = MaybeUninit::uninit();
    let v = unsafe { mu.assume_init() };
    println!("{}", v);
}
''')
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.rs"
    path.write_text('fn main() { println!("ok"); }\n')
    return str(path)


class TestDetect:
    def test_clean_program_exit_zero(self, clean_file, capsys):
        assert main(["detect", clean_file]) == 0
        out = capsys.readouterr().out
        assert "pass" in out

    def test_buggy_program_exit_one(self, buggy_file, capsys):
        assert main(["detect", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "Undefined Behavior" in out

    def test_collect_flag(self, buggy_file):
        assert main(["detect", buggy_file, "--collect"]) == 1


class TestRepair:
    def test_repairs_buggy_file(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASSED" in out

    def test_clean_file_passes_through(self, clean_file):
        assert main(["repair", clean_file]) == 0

    def test_no_kb_flag(self, buggy_file):
        assert main(["repair", buggy_file, "--no-kb", "--seed", "3"]) in (0, 1)


class TestDataset:
    def test_lists_cases(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "117 cases" in out

    def test_category_filter(self, capsys):
        assert main(["dataset", "--category", "panic"]) == 0
        out = capsys.readouterr().out
        assert "panic" in out
        assert "datarace" not in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_bench_name(self, capsys):
        assert main(["bench", "fig99"]) == 2
