"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.rs"
    path.write_text('''
fn main() {
    let mu: MaybeUninit<i32> = MaybeUninit::uninit();
    let v = unsafe { mu.assume_init() };
    println!("{}", v);
}
''')
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.rs"
    path.write_text('fn main() { println!("ok"); }\n')
    return str(path)


class TestDetect:
    def test_clean_program_exit_zero(self, clean_file, capsys):
        assert main(["detect", clean_file]) == 0
        out = capsys.readouterr().out
        assert "pass" in out

    def test_buggy_program_exit_one(self, buggy_file, capsys):
        assert main(["detect", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "Undefined Behavior" in out

    def test_collect_flag(self, buggy_file):
        assert main(["detect", buggy_file, "--collect"]) == 1


class TestRepair:
    def test_repairs_buggy_file(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASSED" in out

    def test_clean_file_passes_through(self, clean_file):
        assert main(["repair", clean_file]) == 0

    def test_no_kb_flag(self, buggy_file):
        assert main(["repair", buggy_file, "--no-kb", "--seed", "3"]) in (0, 1)


class TestDataset:
    def test_lists_cases(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "117 cases" in out

    def test_category_filter(self, capsys):
        assert main(["dataset", "--category", "panic"]) == 0
        out = capsys.readouterr().out
        assert "panic" in out
        assert "datarace" not in out


class TestMissingFile:
    """A missing path exits 2 with a clean message, not a traceback."""

    def test_detect_missing_file(self, capsys):
        assert main(["detect", "/no/such/file.rs"]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "/no/such/file.rs" in err

    def test_repair_missing_file(self, capsys):
        assert main(["repair", "/no/such/file.rs"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_directory_is_clean_error(self, tmp_path, capsys):
        assert main(["detect", str(tmp_path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_utf8_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "binary.rs"
        path.write_bytes(b"\xff\xfe\x00garbage")
        assert main(["detect", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestEngines:
    def test_lists_registered_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("rustbrain", "llm_only", "rustassistant",
                     "rustbrain_nokb"):
            assert name in out
        assert "engines registered" in out


class TestEngineFlag:
    def test_repair_with_engine_spec(self, buggy_file):
        assert main(["repair", buggy_file, "--engine", "rustbrain?kb=off",
                     "--seed", "3"]) in (0, 1)

    def test_repair_with_baseline_engine(self, buggy_file):
        assert main(["repair", buggy_file, "--engine", "llm_only",
                     "--seed", "3"]) in (0, 1)

    def test_unknown_engine_exit_2(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "quantum"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_malformed_spec_exit_2(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "rustbrain?kb"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_spec_overriding_flag_warns(self, buggy_file, capsys):
        main(["repair", buggy_file, "--engine", "rustbrain?seed=3",
              "--seed", "7"])
        err = capsys.readouterr().err
        assert "warning" in err and "--seed 7" in err

    def test_spec_overriding_no_kb_warns(self, buggy_file, capsys):
        main(["repair", buggy_file, "--engine", "rustbrain?kb=on",
              "--no-kb", "--seed", "3"])
        assert "--no-kb is overridden" in capsys.readouterr().err

    def test_equal_values_do_not_warn(self, buggy_file, capsys):
        # 2e-1 and 0.2 are the same temperature; no spurious warning.
        main(["repair", buggy_file, "--engine", "rustbrain?temperature=2e-1",
              "--temperature", "0.2", "--seed", "3"])
        assert "warning" not in capsys.readouterr().err

    def test_no_kb_rejected_for_non_rustbrain(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "llm_only",
                     "--no-kb"]) == 2
        assert "--no-kb only applies" in capsys.readouterr().err


class TestCampaign:
    def test_campaign_runs_and_writes_json(self, tmp_path, capsys):
        out_json = tmp_path / "campaign.json"
        code = main(["campaign", "--engine", "llm_only",
                     "--engine", "rustbrain?kb=off",
                     "--category", "uninit", "--workers", "2",
                     "--quiet", "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Campaign" in out
        assert out_json.exists()
        import json
        payload = json.loads(out_json.read_text())
        assert payload["config"]["workers"] == 2
        assert len(payload["arms"]) == 2

    def test_unknown_engine_exit_2(self, capsys):
        assert main(["campaign", "--engine", "quantum", "--quiet"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unknown_category_exit_2(self, capsys):
        assert main(["campaign", "--engine", "llm_only",
                     "--category", "warp", "--quiet"]) == 2

    def test_unwritable_json_exit_2(self, capsys):
        assert main(["campaign", "--engine", "llm_only",
                     "--category", "uninit", "--quiet",
                     "--json", "/no/such/dir/out.json"]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_bench_name(self, capsys):
        assert main(["bench", "fig99"]) == 2
