"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.rs"
    path.write_text('''
fn main() {
    let mu: MaybeUninit<i32> = MaybeUninit::uninit();
    let v = unsafe { mu.assume_init() };
    println!("{}", v);
}
''')
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.rs"
    path.write_text('fn main() { println!("ok"); }\n')
    return str(path)


class TestDetect:
    def test_clean_program_exit_zero(self, clean_file, capsys):
        assert main(["detect", clean_file]) == 0
        out = capsys.readouterr().out
        assert "pass" in out

    def test_buggy_program_exit_one(self, buggy_file, capsys):
        assert main(["detect", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "Undefined Behavior" in out

    def test_collect_flag(self, buggy_file):
        assert main(["detect", buggy_file, "--collect"]) == 1


class TestRepair:
    def test_repairs_buggy_file(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASSED" in out

    def test_clean_file_passes_through(self, clean_file):
        assert main(["repair", clean_file]) == 0

    def test_no_kb_flag(self, buggy_file):
        assert main(["repair", buggy_file, "--no-kb", "--seed", "3"]) in (0, 1)


class TestEngineExecFlag:
    def test_tree_and_vm_produce_identical_output(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--seed", "3",
                     "--engine-exec", "tree"]) == 0
        tree_out = capsys.readouterr().out
        assert main(["repair", buggy_file, "--seed", "3",
                     "--engine-exec", "vm"]) == 0
        vm_out = capsys.readouterr().out
        assert tree_out == vm_out

    def test_bad_value_exit_2(self, buggy_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["repair", buggy_file, "--engine-exec", "bogus"])
        assert excinfo.value.code == 2

    def test_default_engine_restored_after_run(self, buggy_file):
        from repro.miri import resolve_engine
        before = resolve_engine(None)
        main(["repair", buggy_file, "--seed", "3", "--engine-exec", "tree"])
        assert resolve_engine(None) == before


class TestDataset:
    def test_lists_cases(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "117 cases" in out

    def test_category_filter(self, capsys):
        assert main(["dataset", "--category", "panic"]) == 0
        out = capsys.readouterr().out
        assert "panic" in out
        assert "datarace" not in out


class TestMissingFile:
    """A missing path exits 2 with a clean message, not a traceback."""

    def test_detect_missing_file(self, capsys):
        assert main(["detect", "/no/such/file.rs"]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "/no/such/file.rs" in err

    def test_repair_missing_file(self, capsys):
        assert main(["repair", "/no/such/file.rs"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_directory_is_clean_error(self, tmp_path, capsys):
        assert main(["detect", str(tmp_path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_utf8_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "binary.rs"
        path.write_bytes(b"\xff\xfe\x00garbage")
        assert main(["detect", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestEngines:
    def test_lists_registered_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("rustbrain", "llm_only", "rustassistant",
                     "rustbrain_nokb"):
            assert name in out
        assert "engines registered" in out


class TestEngineFlag:
    def test_repair_with_engine_spec(self, buggy_file):
        assert main(["repair", buggy_file, "--engine", "rustbrain?kb=off",
                     "--seed", "3"]) in (0, 1)

    def test_repair_with_baseline_engine(self, buggy_file):
        assert main(["repair", buggy_file, "--engine", "llm_only",
                     "--seed", "3"]) in (0, 1)

    def test_unknown_engine_exit_2(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "quantum"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_malformed_spec_exit_2(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "rustbrain?kb"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_spec_overriding_flag_warns(self, buggy_file, capsys):
        main(["repair", buggy_file, "--engine", "rustbrain?seed=3",
              "--seed", "7"])
        err = capsys.readouterr().err
        assert "warning" in err and "--seed 7" in err

    def test_spec_overriding_no_kb_warns(self, buggy_file, capsys):
        main(["repair", buggy_file, "--engine", "rustbrain?kb=on",
              "--no-kb", "--seed", "3"])
        assert "--no-kb is overridden" in capsys.readouterr().err

    def test_equal_values_do_not_warn(self, buggy_file, capsys):
        # 2e-1 and 0.2 are the same temperature; no spurious warning.
        main(["repair", buggy_file, "--engine", "rustbrain?temperature=2e-1",
              "--temperature", "0.2", "--seed", "3"])
        assert "warning" not in capsys.readouterr().err

    def test_no_kb_rejected_for_non_rustbrain(self, buggy_file, capsys):
        assert main(["repair", buggy_file, "--engine", "llm_only",
                     "--no-kb"]) == 2
        assert "--no-kb only applies" in capsys.readouterr().err


class TestCampaign:
    def test_campaign_runs_and_writes_json(self, tmp_path, capsys):
        out_json = tmp_path / "campaign.json"
        code = main(["campaign", "--engine", "llm_only",
                     "--engine", "rustbrain?kb=off",
                     "--category", "uninit", "--workers", "2",
                     "--quiet", "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Campaign" in out
        assert out_json.exists()
        import json
        payload = json.loads(out_json.read_text())
        assert payload["config"]["workers"] == 2
        assert len(payload["arms"]) == 2

    def test_unknown_engine_exit_2(self, capsys):
        assert main(["campaign", "--engine", "quantum", "--quiet"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unknown_category_exit_2(self, capsys):
        assert main(["campaign", "--engine", "llm_only",
                     "--category", "warp", "--quiet"]) == 2

    def test_unwritable_json_exit_2(self, capsys):
        assert main(["campaign", "--engine", "llm_only",
                     "--category", "uninit", "--quiet",
                     "--json", "/no/such/dir/out.json"]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_journal_flag_writes_and_reports(self, tmp_path, capsys):
        jdir = tmp_path / "j"
        assert main(["campaign", "--engine", "llm_only",
                     "--category", "uninit", "--quiet",
                     "--journal", str(jdir)]) == 0
        out = capsys.readouterr().out
        assert (jdir / "campaign.journal").exists()
        assert "journal: 0 replayed," in out

    def test_resume_replays_and_is_byte_identical(self, tmp_path, capsys):
        import json
        base = ["campaign", "--engine", "llm_only", "--category", "uninit",
                "--quiet"]
        first_json = tmp_path / "first.json"
        assert main(base + ["--json", str(first_json)]) == 0
        jdir = tmp_path / "j"
        assert main(base + ["--journal", str(jdir)]) == 0
        capsys.readouterr()
        resumed_json = tmp_path / "resumed.json"
        assert main(base + ["--resume", str(jdir),
                            "--json", str(resumed_json)]) == 0
        out = capsys.readouterr().out
        cases = len(json.loads(first_json.read_text())["arms"][0]["cases"])
        assert f"journal: {cases} replayed, 0 appended" in out
        assert resumed_json.read_bytes() == first_json.read_bytes()

    def test_resume_without_journal_exit_2(self, tmp_path, capsys):
        assert main(["campaign", "--engine", "llm_only", "--quiet",
                     "--resume", str(tmp_path / "nothing")]) == 2
        assert "nothing to resume" in capsys.readouterr().err


class TestCampaignSignals:
    def test_sigterm_flushes_journal_and_exits_130(self, tmp_path):
        # A real subprocess and a real signal: the interrupted campaign
        # must exit 130 with a loadable journal and partial telemetry.
        import json
        import os
        import signal
        import subprocess
        import sys
        import time

        jdir = tmp_path / "j"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(pathlib_src()), env.get("PYTHONPATH", "")]))
        # Hang every worker decision point so the run is slow enough to
        # catch mid-flight, deterministically.
        env["REPRO_FAULTS"] = "worker:hang=1,hang_seconds=0.3"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign",
             "--engine", "llm_only", "--engine", "rustbrain?kb=off",
             "--quiet", "--journal", str(jdir)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        journal_path = jdir / "campaign.journal"
        deadline = time.monotonic() + 60
        # Wait until at least two results are durably journaled.
        while time.monotonic() < deadline:
            if journal_path.exists() and \
                    len(journal_path.read_text().splitlines()) >= 3:
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        assert process.poll() is None, \
            (process.stdout.read(), process.stderr.read())
        process.send_signal(signal.SIGTERM)
        _out, err = process.communicate(timeout=60)
        assert process.returncode == 130, err
        assert "campaign interrupted" in err
        assert "resume with" in err
        # The journal survived intact and the partial telemetry flushed.
        lines = journal_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == "repro.journal/1"
        assert len(lines) >= 3
        partial = json.loads((jdir / "telemetry.partial.json").read_text())
        assert partial["cases_finished"] >= 0


def pathlib_src():
    import pathlib
    return pathlib.Path(__file__).resolve().parents[1] / "src"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_bench_name(self, capsys):
        assert main(["bench", "fig99"]) == 2


class TestCorpusCommands:
    def _generate(self, tmp_path, n=8, seed=5):
        out = tmp_path / "gen"
        code = main(["corpus", "generate", "--n", str(n), "--seed",
                     str(seed), "--out", str(out)])
        assert code == 0
        return out / "corpus.json"

    def test_generate_writes_manifest(self, tmp_path, capsys):
        manifest = self._generate(tmp_path)
        out = capsys.readouterr().out
        assert manifest.is_file()
        assert "8 cases" in out and str(manifest) in out

    def test_generate_is_deterministic(self, tmp_path):
        first = self._generate(tmp_path / "a").read_bytes()
        second = self._generate(tmp_path / "b").read_bytes()
        assert first == second

    def test_generate_rejects_unknown_category(self, tmp_path, capsys):
        code = main(["corpus", "generate", "--n", "2", "--seed", "1",
                     "--categories", "not_a_kind",
                     "--out", str(tmp_path / "gen")])
        assert code == 2
        assert "repro:" in capsys.readouterr().err

    def test_generate_category_filter(self, tmp_path, capsys):
        out = tmp_path / "gen"
        code = main(["corpus", "generate", "--n", "4", "--seed", "2",
                     "--categories", "panic", "--out", str(out)])
        assert code == 0
        from repro.corpus import load_manifest
        from repro.miri.errors import UbKind
        dataset = load_manifest(out / "corpus.json")
        assert all(case.category is UbKind.PANIC for case in dataset)

    def test_validate_accepts_generated_manifest(self, tmp_path, capsys):
        manifest = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["corpus", "validate", str(manifest)]) == 0
        assert "8/8 cases valid" in capsys.readouterr().out

    def test_generate_compile_corpus(self, tmp_path, capsys):
        out = tmp_path / "gen"
        code = main(["corpus", "generate", "--n", "4", "--seed", "2",
                     "--compile", "--out", str(out)])
        assert code == 0
        from repro.corpus import load_manifest
        from repro.miri.errors import UbKind
        dataset = load_manifest(out / "corpus.json")
        assert all(case.category is UbKind.COMPILE for case in dataset)
        assert all(case.expected_code for case in dataset)
        capsys.readouterr()
        assert main(["corpus", "validate", str(out / "corpus.json")]) == 0

    def test_compile_excludes_categories(self, tmp_path, capsys):
        code = main(["corpus", "generate", "--n", "2", "--seed", "1",
                     "--compile", "--categories", "panic",
                     "--out", str(tmp_path / "gen")])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_validate_flags_tampered_label(self, tmp_path, capsys):
        import json
        manifest = self._generate(tmp_path)
        document = json.loads(manifest.read_text(encoding="utf-8"))
        # Mislabel one case but keep its fingerprint honest, so the
        # failure comes from self-validation, not the integrity check.
        entry = next(e for e in document["cases"]
                     if e["category"] == "panic")
        entry["category"] = "datarace"
        manifest.write_text(json.dumps(document), encoding="utf-8")
        capsys.readouterr()
        assert main(["corpus", "validate", str(manifest)]) == 1
        out = capsys.readouterr().out
        assert "[wrong_kind]" in out

    def test_validate_rejects_bad_manifest(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        assert main(["corpus", "validate", str(bad)]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_dataset_lists_generated_corpus(self, tmp_path, capsys):
        manifest = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["dataset", "--corpus", str(manifest)]) == 0
        assert "8 cases" in capsys.readouterr().out

    def test_campaign_sweeps_generated_corpus(self, tmp_path, capsys):
        manifest = self._generate(tmp_path)
        capsys.readouterr()
        code = main(["campaign", "--engine", "llm_only",
                     "--corpus", str(manifest), "--quiet"])
        assert code == 0
        assert "Campaign" in capsys.readouterr().out

    def test_campaign_rejects_bad_corpus_path(self, tmp_path, capsys):
        code = main(["campaign", "--engine", "llm_only",
                     "--corpus", str(tmp_path / "missing.json")])
        assert code == 2
        assert "repro:" in capsys.readouterr().err


class TestCheck:
    @pytest.fixture
    def typo_file(self, tmp_path):
        path = tmp_path / "typo.rs"
        path.write_text('fn main() {\n    let count = 4;\n'
                        '    let total = cuont + 1;\n'
                        '    println!("{}", total);\n}\n')
        return str(path)

    def test_clean_file_exit_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_failing_file_exit_one_with_snippet(self, typo_file, capsys):
        assert main(["check", typo_file]) == 1
        out = capsys.readouterr().out
        assert "error[E0425]" in out
        assert "^" in out

    def test_json_emits_diagnostics_schema(self, typo_file, capsys):
        import json
        assert main(["check", typo_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.diagnostics/1"
        assert payload["diagnostics"][0]["code"] == "E0425"

    def test_missing_file_exit_two(self, capsys):
        assert main(["check", "/no/such/file.rs"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_file_without_sweep_is_usage_error(self, capsys):
        assert main(["check"]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_sweep_reports_all_clean(self, capsys):
        assert main(["check", "--sweep", "--generated", "4",
                     "--seed", "11"]) == 0
        assert "sources check clean" in capsys.readouterr().out
