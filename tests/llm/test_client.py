"""Tests for the simulated-LLM client, profiles, sampling and tokenizer."""

import pytest

from repro.llm.client import ContextOverflow, LLMClient, VirtualClock
from repro.llm.profiles import PROFILES, get_profile
from repro.llm.sampling import (
    diversity_count,
    exploration_factor,
    fidelity_factor,
    hallucination_factor,
)
from repro.llm.tokenizer import count_tokens, exceeds_context


class TestProfiles:
    def test_all_four_models_present(self):
        assert set(PROFILES) == {"gpt-3.5", "gpt-4", "claude-3.5", "gpt-o1"}

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("gpt-9")

    def test_gpt4_stronger_than_gpt35(self):
        weak, strong = get_profile("gpt-3.5"), get_profile("gpt-4")
        assert strong.repair_skill > weak.repair_skill
        assert strong.feature_accuracy > weak.feature_accuracy
        assert strong.hallucination_rate < weak.hallucination_rate

    def test_o1_has_panic_weakness(self):
        from repro.miri.errors import UbKind
        o1 = get_profile("gpt-o1")
        assert o1.category_skill.get(UbKind.PANIC, 1.0) < 0.7

    def test_skill_for_applies_difficulty_penalty(self):
        from repro.miri.errors import UbKind
        profile = get_profile("gpt-4")
        easy = profile.skill_for(UbKind.ALLOC, 1)
        hard = profile.skill_for(UbKind.ALLOC, 5)
        assert hard < easy


class TestSampling:
    def test_exploration_peaks_at_half(self):
        assert exploration_factor(0.5) > exploration_factor(0.1)
        assert exploration_factor(0.5) > exploration_factor(0.9)

    def test_exploration_symmetric(self):
        assert exploration_factor(0.2) == pytest.approx(exploration_factor(0.8))

    def test_fidelity_decreases_with_temperature(self):
        assert fidelity_factor(0.1) > fidelity_factor(0.9)

    def test_hallucination_increases_with_temperature(self):
        assert hallucination_factor(0.9) > hallucination_factor(0.1)

    def test_diversity_scales_with_temperature(self):
        assert diversity_count(0.9, 10) >= diversity_count(0.1, 10)
        assert diversity_count(0.1, 10) >= 1

    def test_clamping(self):
        assert exploration_factor(-1) == exploration_factor(0)
        assert exploration_factor(2) == exploration_factor(1)


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_monotone_in_length(self):
        assert count_tokens("a" * 400) > count_tokens("a" * 40)

    def test_context_limit(self):
        assert not exceeds_context("short prompt")
        assert exceeds_context("word " * 100_000)


class TestClient:
    def test_charge_advances_clock(self):
        client = LLMClient("gpt-4", seed=1)
        client.charge("task", "prompt text")
        assert client.clock.elapsed > 0
        assert client.stats.call_count == 1

    def test_latency_scales_with_tokens(self):
        fast = LLMClient("gpt-4", seed=1)
        slow = LLMClient("gpt-4", seed=1)
        fast.charge("t", "short")
        slow.charge("t", "long " * 2000)
        assert slow.clock.elapsed > fast.clock.elapsed

    def test_context_overflow_raises(self):
        client = LLMClient("gpt-4", seed=1, context_limit=100)
        with pytest.raises(ContextOverflow):
            client.charge("t", "word " * 1000)

    def test_rng_deterministic_per_call_index(self):
        a = LLMClient("gpt-4", seed=7)
        b = LLMClient("gpt-4", seed=7)
        ra = a.charge("t", "x").random()
        rb = b.charge("t", "x").random()
        assert ra == rb

    def test_rng_differs_across_calls(self):
        client = LLMClient("gpt-4", seed=7)
        first = client.charge("t", "x").random()
        second = client.charge("t", "x").random()
        assert first != second

    def test_rng_differs_across_seeds(self):
        a = LLMClient("gpt-4", seed=1).charge("t", "x").random()
        b = LLMClient("gpt-4", seed=2).charge("t", "x").random()
        assert a != b

    def test_shared_clock(self):
        clock = VirtualClock()
        a = LLMClient("gpt-4", seed=1, clock=clock)
        b = LLMClient("gpt-4", seed=2, clock=clock)
        a.charge("t", "x")
        b.charge("t", "x")
        assert clock.elapsed == pytest.approx(
            a.stats.total_latency + b.stats.total_latency)

    def test_fork_independent_stream(self):
        client = LLMClient("gpt-4", seed=1)
        fork = client.fork()
        assert fork.seed != client.seed
        assert fork.clock is client.clock


class TestGenerateBatch:
    """Batched sampling: one invocation, n independent streams."""

    def test_stream_zero_matches_plain_charge(self):
        # Routing a single-stream caller through generate_batch must be
        # invisible: sample 0 is the exact RNG charge() would have handed
        # out at the same call index.
        a = LLMClient("gpt-4", seed=7)
        b = LLMClient("gpt-4", seed=7)
        plain = a.charge("solution_generation", "prompt", 120)
        batch = b.generate_batch("solution_generation", "prompt", 5, 120)
        assert plain.random() == batch[0].random()

    def test_streams_are_distinct_and_deterministic(self):
        a = LLMClient("gpt-4", seed=7)
        b = LLMClient("gpt-4", seed=7)
        first = [rng.random() for rng in a.generate_batch("t", "x", 4)]
        second = [rng.random() for rng in b.generate_batch("t", "x", 4)]
        assert first == second
        assert len(set(first)) == 4

    def test_single_llm_call_accounted(self):
        client = LLMClient("gpt-4", seed=1)
        client.generate_batch("t", "x", 6, completion_tokens=100)
        assert client.stats.call_count == 1
        assert client.stats.calls[0].completion_tokens == 600

    def test_latency_amortized_vs_sequential(self):
        batched = LLMClient("gpt-4", seed=1)
        sequential = LLMClient("gpt-4", seed=1)
        batched.generate_batch("t", "prompt words here", 6, 100)
        for _ in range(6):
            sequential.charge("t", "prompt words here", 100)
        assert batched.clock.elapsed < sequential.clock.elapsed

    def test_matches_charge_accounting_for_equivalent_tokens(self):
        # A batch of n samples costs exactly what one charge with
        # n * completion_tokens costs — the identity that keeps seeded
        # experiments bit-identical when routed through the batch path.
        batched = LLMClient("gpt-4", seed=1)
        merged = LLMClient("gpt-4", seed=1)
        batched.generate_batch("t", "same prompt", 4, 120)
        merged.charge("t", "same prompt", 480)
        assert batched.clock.elapsed == pytest.approx(merged.clock.elapsed)
        assert batched.stats.total_tokens == merged.stats.total_tokens

    def test_advances_call_index_once(self):
        client = LLMClient("gpt-4", seed=7)
        client.generate_batch("t", "x", 3)
        other = LLMClient("gpt-4", seed=7)
        other.charge("t", "x")
        assert client.charge("t", "y").random() == \
            other.charge("t", "y").random()

    def test_context_overflow_raises(self):
        client = LLMClient("gpt-4", seed=1, context_limit=100)
        with pytest.raises(ContextOverflow):
            client.generate_batch("t", "word " * 1000, 3)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            LLMClient("gpt-4", seed=1).generate_batch("t", "x", 0)
