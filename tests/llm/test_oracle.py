"""Tests for the stochastic repair oracle."""

from collections import Counter

import pytest

from repro.core.rewrites import FixKind, REGISTRY
from repro.corpus.dataset import load_dataset
from repro.lang import parse_program
from repro.llm.client import LLMClient
from repro.llm.oracle import (
    CATEGORY_RULE_PRIORS,
    CONFUSABLE,
    corrupt_step,
    extract_features,
    rank_candidate_rules,
)
from repro.miri import detect_ub
from repro.miri.errors import UbKind


def sample_case():
    return load_dataset().get("uninit_assume_init_1")


class TestPriors:
    def test_every_paper_category_has_priors(self):
        from repro.miri.errors import PAPER_CATEGORIES
        for category in PAPER_CATEGORIES:
            assert CATEGORY_RULE_PRIORS.get(category), category

    def test_priors_reference_registered_rules(self):
        for rules in CATEGORY_RULE_PRIORS.values():
            for rule in rules:
                assert rule in REGISTRY

    def test_priors_contain_no_hallucinations(self):
        for rules in CATEGORY_RULE_PRIORS.values():
            for rule in rules:
                assert REGISTRY[rule].kind is not FixKind.HALLUCINATION

    def test_confusable_symmetric_enough(self):
        # Every confusable target is itself a real category with priors.
        for sources in CONFUSABLE.values():
            for category in sources:
                assert category in CATEGORY_RULE_PRIORS


class TestFeatureExtraction:
    def test_true_category_always_recorded(self):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        client = LLMClient("gpt-4", seed=1)
        features = extract_features(client, program, report)
        assert features.true_category is UbKind.UNINIT

    def test_prediction_mostly_correct_for_strong_model(self):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        correct = 0
        for seed in range(40):
            client = LLMClient("gpt-4", seed=seed)
            features = extract_features(client, program, report)
            correct += features.correct
        assert correct >= 28  # ≈ feature_accuracy

    def test_weak_model_misclassifies_more(self):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        wrong35 = wrong4 = 0
        for seed in range(60):
            f35 = extract_features(LLMClient("gpt-3.5", seed=seed),
                                   program, report)
            f4 = extract_features(LLMClient("gpt-4", seed=seed),
                                  program, report)
            wrong35 += not f35.correct
            wrong4 += not f4.correct
        assert wrong35 > wrong4

    def test_misprediction_lands_on_confusable(self):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        for seed in range(60):
            features = extract_features(LLMClient("gpt-3.5", seed=seed),
                                        program, report)
            if not features.correct:
                assert features.predicted_category in \
                    CONFUSABLE[features.true_category]

    def test_extraction_charges_a_call(self):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        client = LLMClient("gpt-4", seed=1)
        extract_features(client, program, report)
        assert client.stats.call_count == 1
        assert client.clock.elapsed > 0


class TestSolutionRanking:
    def _features(self, client):
        case = sample_case()
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        return extract_features(client, program, report), program

    def test_returns_requested_number_of_plans(self):
        client = LLMClient("gpt-4", seed=1)
        features, program = self._features(client)
        plans = rank_candidate_rules(client, features, program, 6)
        assert len(plans) == 6
        assert all(plans)

    def test_plans_are_rule_names(self):
        client = LLMClient("gpt-4", seed=1)
        features, program = self._features(client)
        for plan in rank_candidate_rules(client, features, program, 4):
            for rule in plan:
                assert rule in REGISTRY

    def test_strong_model_leads_with_prior(self):
        hits = 0
        for seed in range(30):
            client = LLMClient("gpt-4", seed=seed)
            features, program = self._features(client)
            plans = rank_candidate_rules(client, features, program, 1)
            prior = CATEGORY_RULE_PRIORS[features.predicted_category]
            hits += plans[0][0] in prior
        assert hits >= 15

    def test_feedback_rules_lead_first_plan(self):
        client = LLMClient("gpt-4", seed=1)
        features, program = self._features(client)
        plans = rank_candidate_rules(
            client, features, program, 3,
            feedback_rules=["write_before_assume_init"])
        assert plans[0][0] == "write_before_assume_init"

    def test_deterministic_given_seed(self):
        def run(seed):
            client = LLMClient("gpt-4", seed=seed)
            features, program = self._features(client)
            return rank_candidate_rules(client, features, program, 5)
        assert run(9) == run(9)
        assert run(9) != run(10) or run(9) != run(11)


class TestCorruptStep:
    def test_hallucination_rate_scales_with_model(self):
        counts = {}
        for model in ("gpt-3.5", "gpt-4"):
            hallucinated = 0
            for seed in range(120):
                client = LLMClient(model, seed=seed)
                execution = corrupt_step(client, "move_drop_after_last_use")
                hallucinated += execution.hallucinated
            counts[model] = hallucinated
        assert counts["gpt-3.5"] > counts["gpt-4"]

    def test_hallucinated_rule_is_a_hallucination_rule(self):
        from repro.core.rewrites import HALLUCINATION_RULES
        for seed in range(120):
            client = LLMClient("gpt-3.5", seed=seed)
            execution = corrupt_step(client, "move_drop_after_last_use")
            if execution.hallucinated:
                assert execution.rule in HALLUCINATION_RULES

    def test_guided_steps_drift_less(self):
        drift_guided = drift_unguided = 0
        for seed in range(200):
            client_a = LLMClient("gpt-3.5", seed=seed)
            client_b = LLMClient("gpt-3.5", seed=seed)
            a = corrupt_step(client_a, "guard_index_with_len_check",
                             guided=True)
            b = corrupt_step(client_b, "guard_index_with_len_check",
                             guided=False)
            drift_guided += a.rule.startswith("sloppy_") or a.retouched
            drift_unguided += b.rule.startswith("sloppy_") or b.retouched
        assert drift_guided < drift_unguided

    def test_carelessness_is_sticky_per_client(self):
        client = LLMClient("gpt-3.5", seed=5)
        from repro.llm.oracle import _is_careless
        first = _is_careless(client)
        assert all(_is_careless(client) == first for _ in range(10))


class TestGeneratePlanBatch:
    def _features(self, client):
        from repro.miri import detect_ub
        case = load_dataset().get("uninit_assume_init_1")
        program = parse_program(case.source)
        report = detect_ub(case.source, collect=True)
        return program, extract_features(client, program, report)

    def test_batch_returns_n_plans(self):
        from repro.llm.oracle import generate_plan_batch
        client = LLMClient("gpt-4", seed=3)
        program, features = self._features(client)
        plans = generate_plan_batch(client, features, program, 5)
        assert len(plans) == 5
        assert all(isinstance(plan, list) for plan in plans)

    def test_batch_is_deterministic(self):
        from repro.llm.oracle import generate_plan_batch
        first = LLMClient("gpt-4", seed=3)
        program, features = self._features(first)
        second = LLMClient("gpt-4", seed=3)
        _, features2 = self._features(second)
        assert generate_plan_batch(first, features, program, 4) == \
            generate_plan_batch(second, features2, program, 4)

    def test_batch_accounts_single_generation_call(self):
        from repro.llm.oracle import generate_plan_batch
        client = LLMClient("gpt-4", seed=3)
        program, features = self._features(client)
        before = client.stats.call_count
        generate_plan_batch(client, features, program, 6)
        assert client.stats.call_count == before + 1

    def test_samples_can_disagree(self):
        # Independent streams: across seeds, a batch is not n copies of
        # one plan (the Fig. 11 exploration effect needs diversity).
        from repro.llm.oracle import generate_plan_batch
        diverse = False
        for seed in range(8):
            client = LLMClient("gpt-4", seed=seed, temperature=0.9)
            program, features = self._features(client)
            plans = generate_plan_batch(client, features, program, 6)
            if len({tuple(plan) for plan in plans}) > 1:
                diverse = True
                break
        assert diverse

    def test_explicit_rng_skips_charging(self):
        import random
        client = LLMClient("gpt-4", seed=3)
        program, features = self._features(client)
        before = client.stats.call_count
        plans = rank_candidate_rules(client, features, program, 1,
                                     rng=random.Random(7))
        assert client.stats.call_count == before
        assert len(plans) == 1

    def test_zero_solutions_yields_empty_plan_list(self):
        # n_solutions=0 is a valid (if degenerate) config; it must not
        # reach the batch layer's n >= 1 guard mid-campaign.
        from repro.llm.oracle import generate_plan_batch
        client = LLMClient("gpt-4", seed=3)
        program, features = self._features(client)
        assert rank_candidate_rules(client, features, program, 0) == []
        assert generate_plan_batch(client, features, program, 0) == []
