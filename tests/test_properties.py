"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.bench.stats import wilson_interval
from repro.core.knowledge import cosine, vectorize
from repro.lang import parse_expr, parse_program, print_expr, print_program
from repro.lang import types as ty
from repro.miri.borrows import BorrowError, BorrowStack
from repro.miri.races import VectorClock

# ---------------------------------------------------------------------------
# Integer semantics

int_types = st.sampled_from([ty.I8, ty.I16, ty.I32, ty.I64,
                             ty.U8, ty.U16, ty.U32, ty.U64, ty.USIZE])


@given(int_types, st.integers(-2**70, 2**70))
def test_wrap_lands_in_range(int_ty, value):
    wrapped = int_ty.wrap(value)
    assert int_ty.min_value <= wrapped <= int_ty.max_value


@given(int_types, st.integers(-2**70, 2**70))
def test_wrap_idempotent(int_ty, value):
    once = int_ty.wrap(value)
    assert int_ty.wrap(once) == once


@given(int_types, st.integers(-2**70, 2**70))
def test_wrap_congruent_modulo_2_pow_bits(int_ty, value):
    wrapped = int_ty.wrap(value)
    assert (wrapped - value) % (1 << int_ty.bits) == 0


# ---------------------------------------------------------------------------
# Expression round-trips

_expr_leaf = st.one_of(
    st.integers(0, 10_000).map(lambda n: str(n)),
    st.sampled_from(["x", "count", "total", "flag"]),
    st.booleans().map(lambda b: "true" if b else "false"),
)


@st.composite
def expr_text(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_expr_leaf)
    op = draw(st.sampled_from(["+", "-", "*", "==", "<", "&&", "||"]))
    left = draw(expr_text(depth + 1))  # type: ignore[call-arg]
    right = draw(expr_text(depth + 1))  # type: ignore[call-arg]
    # Keep bool/int operators type-plausible by parenthesising everything.
    return f"({left} {op} {right})"


@given(expr_text())
@settings(max_examples=60)
def test_expr_print_parse_fixpoint(source):
    expr = parse_expr(source)
    printed = print_expr(expr)
    assert print_expr(parse_expr(printed)) == printed


@given(st.lists(st.sampled_from([
    "let a = 1;",
    "let mut b = 2;",
    "b += 1;",
    "let c = a + b;",
    "println!(\"{}\", 1);",
    "if true { } else { }",
    "for i in 0..3 { }",
    "while false { }",
    "unsafe { }",
]), min_size=0, max_size=6))
@settings(max_examples=50)
def test_program_print_parse_fixpoint(stmts):
    source = "fn main() {\n" + "\n".join(stmts) + "\n}"
    once = print_program(parse_program(source))
    twice = print_program(parse_program(once))
    assert once == twice


# ---------------------------------------------------------------------------
# Stacked borrows invariants

@given(st.lists(st.sampled_from(["mut", "shared", "raw"]), max_size=8))
def test_borrow_stack_base_always_grants(ops):
    stack, base = BorrowStack.new_allocation()
    tag = base
    for op in ops:
        try:
            if op == "mut":
                tag = stack.retag_mut(tag)
            elif op == "shared":
                tag = stack.retag_shared(tag)
            else:
                tag = stack.retag_raw(tag, mutable=True)
        except BorrowError:
            break
    # Whatever happened above, the base tag survives every operation.
    assert stack.grants(base)
    stack.write(base)


@given(st.lists(st.sampled_from(["mut", "shared", "raw"]), min_size=1,
                max_size=8))
def test_borrow_write_via_base_clears_everything_above(ops):
    stack, base = BorrowStack.new_allocation()
    tag = base
    for op in ops:
        try:
            if op == "mut":
                tag = stack.retag_mut(tag)
            elif op == "shared":
                tag = stack.retag_shared(tag)
            else:
                tag = stack.retag_raw(tag, mutable=True)
        except BorrowError:
            break
    stack.write(base)
    assert stack.depth() == 1


# ---------------------------------------------------------------------------
# Vector clocks

@given(st.dictionaries(st.integers(0, 5), st.integers(0, 100), max_size=5),
       st.dictionaries(st.integers(0, 5), st.integers(0, 100), max_size=5))
def test_vector_clock_join_is_upper_bound(a_times, b_times):
    a = VectorClock(dict(a_times))
    b = VectorClock(dict(b_times))
    joined = a.copy()
    joined.join(b)
    for tid in set(a_times) | set(b_times):
        assert joined.get(tid) >= a.get(tid)
        assert joined.get(tid) >= b.get(tid)
        assert joined.get(tid) == max(a.get(tid), b.get(tid))


@given(st.dictionaries(st.integers(0, 5), st.integers(0, 100), max_size=5))
def test_vector_clock_join_idempotent(times):
    a = VectorClock(dict(times))
    b = a.copy()
    a.join(b)
    assert a.times == b.times


# ---------------------------------------------------------------------------
# Embeddings

@given(st.sampled_from([
    "fn main() { let x = 1; }",
    "fn main() { unsafe { } }",
    "fn main() { let v = vec![1, 2]; }",
    "static G: i32 = 0;\nfn main() { }",
]))
def test_vectorize_unit_norm(source):
    import numpy as np
    vector = vectorize(parse_program(source))
    assert abs(float(np.linalg.norm(vector)) - 1.0) < 1e-9


@given(st.sampled_from(["fn main() { let a = 1; }",
                        "fn main() { unsafe { } }"]))
def test_cosine_self_similarity_is_one(source):
    vector = vectorize(parse_program(source))
    assert cosine(vector, vector) == 1.0 if vector.any() else True


# ---------------------------------------------------------------------------
# Wilson interval properties

@given(st.integers(0, 500), st.integers(1, 500))
def test_wilson_interval_contains_point_estimate(successes, n):
    successes = min(successes, n)
    ci = wilson_interval(successes, n)
    assert 0.0 <= ci.low <= ci.rate <= ci.high <= 1.0


@given(st.integers(1, 400))
def test_wilson_interval_narrows_with_n(n):
    narrow = wilson_interval(n, 2 * n)
    wide = wilson_interval(max(1, n // 10), max(2, n // 5))
    assert (narrow.high - narrow.low) <= (wide.high - wide.low) + 1e-9
